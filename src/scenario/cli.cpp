#include "scenario/cli.hpp"

#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include <sstream>

#include "adversary/archive.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "fault/chaos.hpp"
#include "fault/parser.hpp"
#include "obs/jsonl.hpp"
#include "obs/trace_sink.hpp"
#include "models/link_model_matrix.hpp"
#include "scenario/overrides.hpp"
#include "scenario/registry.hpp"
#include "scenario/results.hpp"
#include "scenario/run.hpp"

namespace timing::scenario {

namespace {

std::string join_doubles(const std::vector<double>& vs) {
  std::string out;
  for (double v : vs) {
    if (!out.empty()) out += ",";
    out += Table::num(v, v == static_cast<long long>(v) ? 0 : 2);
  }
  return out;
}

std::string join_ints(const std::vector<int>& vs) {
  std::string out;
  for (int v : vs) {
    if (!out.empty()) out += ",";
    out += std::to_string(v);
  }
  return out;
}

void print_spec(std::ostream& os, const ScenarioSpec& spec) {
  os << "  sampler          " << to_string(spec.sampler) << "\n";
  os << "  n                " << spec.n << "\n";
  os << "  iid_p            " << Table::num(spec.iid_p, 2) << "\n";
  os << "  timeouts_ms      "
     << (spec.timeouts_ms.empty() ? "-" : join_doubles(spec.timeouts_ms))
     << "\n";
  os << "  runs             " << spec.runs
     << (spec.honor_env_runs ? "  (TIMING_RUNS honoured)" : "") << "\n";
  os << "  rounds_per_run   " << spec.rounds_per_run << "\n";
  os << "  start_points     " << spec.start_points << "\n";
  os << "  seed             " << spec.seed << "\n";
  os << "  leader           " << to_string(spec.leader_policy);
  if (spec.leader_policy == LeaderPolicy::kFixed) os << " (" << spec.leader
                                                     << ")";
  os << "\n";
  os << "  decision_rounds  ";
  for (std::size_t i = 0; i < spec.decision_rounds.size(); ++i) {
    if (i) os << ",";
    os << spec.decision_rounds[i];
  }
  os << "  (ES,LM,WLM,AFM)\n";
  os << "  group_sizes      "
     << (spec.group_sizes.empty() ? "-" : join_ints(spec.group_sizes)) << "\n";
  if (!spec.async_fracs.empty()) {
    os << "  async_fracs      " << join_doubles(spec.async_fracs) << "\n";
    os << "  psync_frac       " << Table::num(spec.psync_frac, 2) << "\n";
  }
  if (!spec.fault_spec.empty()) {
    os << "  fault            " << spec.fault_spec << "\n";
  }
  if (!spec.link_models.empty()) {
    os << "  link_models      " << spec.link_models << "\n";
    LinkModelMatrix m;
    const std::string err = parse_link_models(spec.link_models, spec.n, m);
    if (!err.empty()) {  // validate() reports this on `run`
      os << "    (" << err << ")\n";
      return;
    }
    os << "\nresolved link-model matrix (rows = destination, columns = "
          "source; S sync, P psync, A async):\n"
       << m.grid();
    os << "links: " << m.count(LinkModelClass::kSync) << " sync, "
       << m.count(LinkModelClass::kPartialSync) << " psync, "
       << m.count(LinkModelClass::kAsync) << " async\n";
  }
}

/// The fault-plan timeline `describe` appends for chaos scenarios (and
/// for any scenario given a fault= override): the fixed plan when one is
/// set, otherwise trial 0's random plan as a sample of the family.
void print_fault_timeline(std::ostream& os, const ScenarioSpec& spec) {
  if (!spec.fault_spec.empty()) {
    const fault::ParseResult pr = fault::load_fault_plan(spec.fault_spec);
    if (!pr.ok()) {  // validate() reports this on `run`; stay informative
      os << "\nfault plan: " << pr.error << "\n";
      return;
    }
    os << "\nfault plan (every trial):\n" << fault::timeline(pr.plan);
    return;
  }
  const ProcessId leader =
      spec.leader_policy == LeaderPolicy::kFixed ? spec.leader : 0;
  const fault::FaultPlan plan = fault::random_fault_plan(
      spec.n, leader, substream_seed(spec.seed, 0));
  os << "\nfault plan (trial 0 of seed " << spec.seed
     << "; every trial draws a fresh one):\n"
     << fault::timeline(plan);
}

void print_bench_usage(std::ostream& os, const char* name,
                       const Scenario& sc) {
  os << "usage: " << sc.binary << " [--csv] [key=value ...]\n\n"
     << sc.figure << ": " << sc.summary << "\n"
     << "Scenario '" << name
     << "' of the registry; the same experiment runs via\n"
        "`timing_lab run "
     << name << " [overrides]`.\n\noverrides:\n"
     << override_help();
}

/// Shared run path: execute `sc` over the (already validated) spec,
/// streaming results JSONL to spec.results_path when set, then re-parse
/// what was written with the strict parser so a truncated or malformed
/// file fails the run instead of poisoning downstream tooling.
int execute(const Scenario& sc, const ScenarioSpec& spec, bool csv) {
  RunContext ctx;
  ctx.out = &std::cout;
  ctx.csv = csv;
  std::ofstream results_out;
  std::optional<ResultWriter> writer;
  if (!spec.results_path.empty()) {
    results_out.open(spec.results_path);
    if (!results_out) {
      std::cerr << "error: cannot open results file '" << spec.results_path
                << "'\n";
      return 1;
    }
    writer.emplace(results_out, sc.name);
    ctx.results = &*writer;
  }
  const int rc = sc.run(spec, ctx);
  if (ctx.results) {
    writer->finish();
    results_out.flush();
    if (!results_out) {
      std::cerr << "error: short write to '" << spec.results_path << "'\n";
      return 1;
    }
    try {
      const ParsedResults parsed = parse_results_file(spec.results_path);
      std::cerr << "results: " << parsed.tables.size() << " table(s), "
                << parsed.total_rows() << " row(s) -> " << spec.results_path
                << "\n";
    } catch (const std::exception& e) {
      std::cerr << "error: results re-parse failed: " << e.what() << "\n";
      return 1;
    }
  }
  return rc;
}

void print_lab_usage(std::ostream& os) {
  os << "usage: timing_lab <command> [args]\n\n"
        "commands:\n"
        "  list                         all registered scenarios\n"
        "  describe <scenario> [key=value ...]\n"
        "                               defaults + override grammar; chaos\n"
        "                               scenarios print the resolved\n"
        "                               fault-plan timeline\n"
        "  run <scenario> [--csv] [--no-jsonl] [key=value ...]\n"
        "                               execute with overrides; results\n"
        "                               JSONL is written by default\n"
        "  validate <file>              strict-parse a results JSONL file\n"
        "                               or a fault-plan file (sniffed by\n"
        "                               the first byte)\n"
        "  replay <plan> [trace=PATH] [key=value ...]\n"
        "                               run one fault plan (file or inline\n"
        "                               spec) and print the verdict;\n"
        "                               adversary-archive entries replay\n"
        "                               their recorded evaluation; seed=\n"
        "                               takes a chaos report's trial seed\n"
        "                               verbatim; trace= records a JSONL\n"
        "                               trace for offline re-verification\n"
        "  help                         this text\n\n"
        "overrides:\n"
     << override_help();
}

int lab_list() {
  Table t({"scenario", "figure", "binary", "summary"});
  for (const Scenario& s : registry()) {
    t.add_row({s.name, s.figure, s.binary, s.summary});
  }
  t.print(std::cout, "Registered scenarios (" +
                         std::to_string(registry().size()) + ")");
  return 0;
}

int lab_describe(int argc, char** argv) {
  const std::string name = argv[2];
  const Scenario* sc = find_scenario(name);
  if (!sc) {
    std::cerr << "error: unknown scenario '" << name
              << "' (see `timing_lab list`)\n";
    return 2;
  }
  ScenarioSpec spec = sc->defaults();
  const CliArgs args = apply_cli_args(spec, argc, argv, 3);
  if (!args.error.empty()) {
    std::cerr << "error: " << args.error << "\n";
    return 2;
  }
  std::cout << sc->name << " - " << sc->figure << "\n"
            << sc->summary << "\n"
            << "binary: " << sc->binary << "\n\n"
            << (argc > 3 ? "resolved spec:\n" : "defaults:\n");
  print_spec(std::cout, spec);
  if (sc->figure == std::string("chaos") || !spec.fault_spec.empty()) {
    print_fault_timeline(std::cout, spec);
  }
  std::cout << "\noverrides:\n" << override_help();
  return 0;
}

int lab_run(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "error: run needs a scenario name (see `timing_lab "
                 "list`)\n";
    return 2;
  }
  const std::string name = argv[2];
  const Scenario* sc = find_scenario(name);
  if (!sc) {
    std::cerr << "error: unknown scenario '" << name
              << "' (see `timing_lab list`)\n";
    return 2;
  }
  ScenarioSpec spec = sc->defaults();
  if (spec.honor_env_runs) spec.runs = runs_or_default(spec.runs);
  // Structured results on by default; fig1c -> fig1c.results.jsonl,
  // ablation/smr_cost -> ablation_smr_cost.results.jsonl.
  std::string default_path = name;
  for (char& c : default_path) {
    if (c == '/') c = '_';
  }
  spec.results_path = default_path + ".results.jsonl";

  // `--no-jsonl` is a lab-only flag; filter it before the shared parser.
  std::vector<char*> rest;
  for (int i = 3; i < argc; ++i) {
    if (std::string(argv[i]) == "--no-jsonl") {
      spec.results_path.clear();
    } else {
      rest.push_back(argv[i]);
    }
  }
  const CliArgs args =
      apply_cli_args(spec, static_cast<int>(rest.size()), rest.data(), 0);
  if (args.help) {
    print_lab_usage(std::cout);
    return 0;
  }
  if (!args.error.empty()) {
    std::cerr << "error: " << args.error << "\n\n";
    print_lab_usage(std::cerr);
    return 2;
  }
  const std::string invalid = validate(spec);
  if (!invalid.empty()) {
    std::cerr << "error: invalid scenario parameters: " << invalid << "\n";
    return 2;
  }
  return execute(*sc, spec, args.csv);
}

int lab_validate(const std::string& path) {
  std::ifstream sniff(path);
  if (!sniff) {
    std::cerr << "error: cannot open '" << path << "'\n";
    return 1;
  }
  char first = 0;
  sniff >> first;  // first non-whitespace byte decides the format
  sniff.close();
  if (first == '{') {
    try {
      const ParsedResults parsed = parse_results_file(path);
      std::cout << "ok: scenario '" << parsed.scenario << "', schema v"
                << parsed.version << ", " << parsed.tables.size()
                << " table(s), " << parsed.total_rows() << " row(s)\n";
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  // Anything else is a fault-plan file; the parser reports
  // "<path>: line N: ..." and validate() names the offending event.
  const fault::ParseResult pr = fault::load_fault_plan(path);
  if (!pr.ok()) {
    std::cerr << "error: " << pr.error << "\n";
    return 1;
  }
  const int n = fault::min_processes(pr.plan);
  const std::string verr = fault::validate(pr.plan, n);
  if (!verr.empty()) {
    std::cerr << "error: " << path << ": " << verr << "\n";
    return 1;
  }
  std::cout << "ok: fault plan, " << pr.plan.events.size() << " event(s), "
            << (pr.plan.gsr >= 1
                    ? "gsr @" + std::to_string(pr.plan.gsr)
                    : std::string("no gsr marker (pure-safety plan)"))
            << ", fits n >= " << n << "\n";
  return 0;
}

/// One line describing a finished evaluation, shared by both replay
/// modes.
void print_replay_outcome(std::ostream& os, const adversary::Fitness& f,
                          const fault::FaultPlan& plan, AlgorithmKind kind) {
  os << "verdict: " << adversary::verdict_string(f) << "\n";
  if (f.decision_round >= 0) {
    os << "decided at round " << f.decision_round << " (mean delay "
       << Table::num(f.delay, 2) << " rounds past gsr " << plan.gsr
       << ", bound gsr+" << fault::bound_after_gsr(kind) << ")\n";
  } else if (f.supported) {
    os << "never decided (mean delay " << Table::num(f.delay, 2)
       << " rounds past gsr " << plan.gsr << " observed, bound gsr+"
       << fault::bound_after_gsr(kind) << ")\n";
  } else {
    os << "liveness was not owed: the matrix's reliable plane cannot "
          "carry the algorithm's native model\n";
  }
  os << "score: " << Table::num(f.score, 1) << "\n";
  if (!f.violation.empty()) os << "\n" << f.violation << "\n";
}

/// Record the replay's trace as a schema-v1 JSONL file (one trial per
/// evaluation sample) so trace_tool can re-verify the run offline
/// (validate / summary --json).
int write_replay_trace(const std::string& path,
                       const std::vector<TrialTrace>& traces, int n) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot open trace file '" << path << "'\n";
    return 1;
  }
  write_trace_header(out, n);
  std::size_t events = 0;
  for (const TrialTrace& t : traces) {
    write_trial(out, t.id, t.events, n);
    events += t.events.size();
  }
  out.flush();
  if (!out) {
    std::cerr << "error: short write to '" << path << "'\n";
    return 1;
  }
  std::cerr << "trace: " << traces.size() << " trial(s), " << events
            << " event(s) -> " << path << "\n";
  return 0;
}

/// `timing_lab replay <plan-file-or-inline-spec> [trace=PATH] [key=value]`
///
/// Closes the loop on "violations are reported as replayable plan
/// specs": paste the spec (or an archive entry file) and get the
/// verdict back. Two modes:
///  * archive entries (files starting with "# adversary v1") replay
///    their own recorded evaluation and must reproduce it exactly;
///  * bare plans run under chaos/single's defaults with overrides
///    (algorithm=, n=, leader=, iid_p=, seed=, link_models=, ...);
///    seed= is the trial seed verbatim, so the seed a chaos violation
///    report quotes replays that exact trial.
/// Exit: 0 clean (archive mode: reproduced), 1 violation or archive
/// drift, 2 usage errors.
int lab_replay(int argc, char** argv) {
  const std::string value = argv[2];

  // `trace=PATH` is a replay-only key; filter before the shared parser.
  std::string trace_path;
  std::vector<char*> rest;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("trace=", 0) == 0) {
      trace_path = arg.substr(6);
    } else {
      rest.push_back(argv[i]);
    }
  }

  // Archive mode: the file carries its own evaluation config and the
  // outcome it must reproduce.
  std::ifstream file(value);
  std::string text;
  if (file) {
    std::ostringstream buf;
    buf << file.rdbuf();
    text = buf.str();
  }
  if (adversary::is_archive_text(text)) {
    if (!rest.empty()) {
      std::cerr << "error: archive entries replay their recorded "
                   "configuration; only trace=PATH applies\n";
      return 2;
    }
    adversary::ArchiveEntry entry;
    const std::string err = adversary::parse_archive_entry(text, entry);
    if (!err.empty()) {
      std::cerr << "error: " << value << ": " << err << "\n";
      return 2;
    }
    std::cout << "archive entry: algorithm "
              << algorithm_key(entry.eval.algorithm) << ", n=" << entry.eval.n
              << ", leader=" << entry.eval.leader
              << ", eval_seed=" << entry.eval.eval_seed << "\n"
              << "recorded: verdict=" << entry.verdict
              << " delay=" << entry.delay << " decided@"
              << entry.decision_round << " score="
              << Table::num(entry.score, 1) << "\n\n";
    std::vector<TrialTrace> traces;
    const adversary::Fitness f =
        adversary::evaluate(entry.candidate, entry.eval, &traces);
    print_replay_outcome(std::cout, f, entry.candidate.plan,
                         entry.eval.algorithm);
    if (!trace_path.empty() &&
        write_replay_trace(trace_path, traces, entry.eval.n) != 0) {
      return 1;
    }
    const bool match = entry.verdict == adversary::verdict_string(f) &&
                       entry.delay == f.delay &&
                       entry.decision_round == f.decision_round &&
                       entry.score == f.score;
    if (!match) {
      std::cerr << "MISMATCH: the replay differs from the recorded "
                   "outcome (engine behavior changed)\n";
      return 1;
    }
    std::cout << "\nreproduced the recorded outcome exactly.\n";
    return 0;
  }

  // Bare-plan mode: chaos/single's defaults, overridable.
  const Scenario* chaos = find_scenario("chaos/single");
  TM_CHECK(chaos != nullptr, "chaos/single is always registered");
  ScenarioSpec spec = chaos->defaults();
  spec.fault_spec = value;
  const CliArgs args = apply_cli_args(spec, static_cast<int>(rest.size()),
                                      rest.data(), 0);
  if (args.help) {
    print_lab_usage(std::cout);
    return 0;
  }
  if (!args.error.empty()) {
    std::cerr << "error: " << args.error << "\n";
    return 2;
  }
  const std::string invalid = validate(spec);
  if (!invalid.empty()) {
    std::cerr << "error: " << invalid << "\n";
    return 2;
  }
  const fault::ParseResult pr = fault::load_fault_plan(spec.fault_spec);
  TM_CHECK(pr.ok(), "validate() admits only parseable plans");
  if (pr.plan.gsr < 1) {
    std::cerr << "error: replay needs a plan with a terminal `gsr @R` "
                 "marker (the liveness bound counts from it)\n";
    return 2;
  }

  adversary::Candidate c;
  c.plan = pr.plan;
  if (!spec.link_models.empty()) {
    const std::string lerr =
        parse_link_models(spec.link_models, spec.n, c.link_models);
    TM_CHECK(lerr.empty(), "validate() admits only parseable link_models");
  } else {
    c.link_models = LinkModelMatrix(spec.n);
  }
  adversary::EvalConfig eval;
  eval.algorithm = spec.algorithm;
  eval.n = spec.n;
  eval.leader = spec.leader_policy == LeaderPolicy::kFixed ? spec.leader : 0;
  eval.pre_gsr_p = spec.iid_p;
  eval.eval_seed = spec.seed;  // the trial seed verbatim...
  eval.samples = 1;            // ...for exactly that one trial
  eval.min_rounds = spec.rounds_per_run;

  std::cout << "replaying under algorithm " << algorithm_key(eval.algorithm)
            << ", n=" << eval.n << ", leader=" << eval.leader
            << ", pre_gsr_p=" << Table::num(eval.pre_gsr_p, 2)
            << ", seed=" << eval.eval_seed << "\n\nplan:\n"
            << fault::timeline(c.plan) << "\n";
  std::vector<TrialTrace> traces;
  const adversary::Fitness f = adversary::evaluate(c, eval, &traces);
  print_replay_outcome(std::cout, f, c.plan, eval.algorithm);
  if (!trace_path.empty() &&
      write_replay_trace(trace_path, traces, eval.n) != 0) {
    return 1;
  }
  return f.safety_violation || f.liveness_violation ? 1 : 0;
}

}  // namespace

int bench_main(const char* name, int argc, char** argv) {
  const Scenario* sc = find_scenario(name);
  if (!sc) {
    std::cerr << "error: scenario '" << name << "' is not registered\n";
    return 2;
  }
  ScenarioSpec spec = sc->defaults();
  if (spec.honor_env_runs) spec.runs = runs_or_default(spec.runs);
  const CliArgs args = apply_cli_args(spec, argc, argv, 1);
  if (args.help) {
    print_bench_usage(std::cout, name, *sc);
    return 0;
  }
  if (!args.error.empty()) {
    std::cerr << "error: " << args.error << "\n\n";
    print_bench_usage(std::cerr, name, *sc);
    return 2;
  }
  const std::string invalid = validate(spec);
  if (!invalid.empty()) {
    std::cerr << "error: invalid scenario parameters: " << invalid << "\n";
    return 2;
  }
  return execute(*sc, spec, args.csv);
}

int lab_main(int argc, char** argv) {
  if (argc < 2) {
    print_lab_usage(std::cerr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "list") return lab_list();
  if (cmd == "describe") {
    if (argc < 3) {
      std::cerr << "error: describe needs a scenario name\n";
      return 2;
    }
    return lab_describe(argc, argv);
  }
  if (cmd == "run") return lab_run(argc, argv);
  if (cmd == "replay") {
    if (argc < 3) {
      std::cerr << "error: replay needs a plan file or inline spec\n";
      return 2;
    }
    return lab_replay(argc, argv);
  }
  if (cmd == "validate") {
    if (argc < 3) {
      std::cerr << "error: validate needs a results.jsonl path\n";
      return 2;
    }
    return lab_validate(argv[2]);
  }
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    print_lab_usage(std::cout);
    return 0;
  }
  std::cerr << "error: unknown command '" << cmd << "'\n\n";
  print_lab_usage(std::cerr);
  return 2;
}

}  // namespace timing::scenario

#include "scenario/cli.hpp"

#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "fault/chaos.hpp"
#include "fault/parser.hpp"
#include "models/link_model_matrix.hpp"
#include "scenario/overrides.hpp"
#include "scenario/registry.hpp"
#include "scenario/results.hpp"
#include "scenario/run.hpp"

namespace timing::scenario {

namespace {

std::string join_doubles(const std::vector<double>& vs) {
  std::string out;
  for (double v : vs) {
    if (!out.empty()) out += ",";
    out += Table::num(v, v == static_cast<long long>(v) ? 0 : 2);
  }
  return out;
}

std::string join_ints(const std::vector<int>& vs) {
  std::string out;
  for (int v : vs) {
    if (!out.empty()) out += ",";
    out += std::to_string(v);
  }
  return out;
}

void print_spec(std::ostream& os, const ScenarioSpec& spec) {
  os << "  sampler          " << to_string(spec.sampler) << "\n";
  os << "  n                " << spec.n << "\n";
  os << "  iid_p            " << Table::num(spec.iid_p, 2) << "\n";
  os << "  timeouts_ms      "
     << (spec.timeouts_ms.empty() ? "-" : join_doubles(spec.timeouts_ms))
     << "\n";
  os << "  runs             " << spec.runs
     << (spec.honor_env_runs ? "  (TIMING_RUNS honoured)" : "") << "\n";
  os << "  rounds_per_run   " << spec.rounds_per_run << "\n";
  os << "  start_points     " << spec.start_points << "\n";
  os << "  seed             " << spec.seed << "\n";
  os << "  leader           " << to_string(spec.leader_policy);
  if (spec.leader_policy == LeaderPolicy::kFixed) os << " (" << spec.leader
                                                     << ")";
  os << "\n";
  os << "  decision_rounds  ";
  for (std::size_t i = 0; i < spec.decision_rounds.size(); ++i) {
    if (i) os << ",";
    os << spec.decision_rounds[i];
  }
  os << "  (ES,LM,WLM,AFM)\n";
  os << "  group_sizes      "
     << (spec.group_sizes.empty() ? "-" : join_ints(spec.group_sizes)) << "\n";
  if (!spec.async_fracs.empty()) {
    os << "  async_fracs      " << join_doubles(spec.async_fracs) << "\n";
    os << "  psync_frac       " << Table::num(spec.psync_frac, 2) << "\n";
  }
  if (!spec.fault_spec.empty()) {
    os << "  fault            " << spec.fault_spec << "\n";
  }
  if (!spec.link_models.empty()) {
    os << "  link_models      " << spec.link_models << "\n";
    LinkModelMatrix m;
    const std::string err = parse_link_models(spec.link_models, spec.n, m);
    if (!err.empty()) {  // validate() reports this on `run`
      os << "    (" << err << ")\n";
      return;
    }
    os << "\nresolved link-model matrix (rows = destination, columns = "
          "source; S sync, P psync, A async):\n"
       << m.grid();
    os << "links: " << m.count(LinkModelClass::kSync) << " sync, "
       << m.count(LinkModelClass::kPartialSync) << " psync, "
       << m.count(LinkModelClass::kAsync) << " async\n";
  }
}

/// The fault-plan timeline `describe` appends for chaos scenarios (and
/// for any scenario given a fault= override): the fixed plan when one is
/// set, otherwise trial 0's random plan as a sample of the family.
void print_fault_timeline(std::ostream& os, const ScenarioSpec& spec) {
  if (!spec.fault_spec.empty()) {
    const fault::ParseResult pr = fault::load_fault_plan(spec.fault_spec);
    if (!pr.ok()) {  // validate() reports this on `run`; stay informative
      os << "\nfault plan: " << pr.error << "\n";
      return;
    }
    os << "\nfault plan (every trial):\n" << fault::timeline(pr.plan);
    return;
  }
  const ProcessId leader =
      spec.leader_policy == LeaderPolicy::kFixed ? spec.leader : 0;
  const fault::FaultPlan plan = fault::random_fault_plan(
      spec.n, leader, substream_seed(spec.seed, 0));
  os << "\nfault plan (trial 0 of seed " << spec.seed
     << "; every trial draws a fresh one):\n"
     << fault::timeline(plan);
}

void print_bench_usage(std::ostream& os, const char* name,
                       const Scenario& sc) {
  os << "usage: " << sc.binary << " [--csv] [key=value ...]\n\n"
     << sc.figure << ": " << sc.summary << "\n"
     << "Scenario '" << name
     << "' of the registry; the same experiment runs via\n"
        "`timing_lab run "
     << name << " [overrides]`.\n\noverrides:\n"
     << override_help();
}

/// Shared run path: execute `sc` over the (already validated) spec,
/// streaming results JSONL to spec.results_path when set, then re-parse
/// what was written with the strict parser so a truncated or malformed
/// file fails the run instead of poisoning downstream tooling.
int execute(const Scenario& sc, const ScenarioSpec& spec, bool csv) {
  RunContext ctx;
  ctx.out = &std::cout;
  ctx.csv = csv;
  std::ofstream results_out;
  std::optional<ResultWriter> writer;
  if (!spec.results_path.empty()) {
    results_out.open(spec.results_path);
    if (!results_out) {
      std::cerr << "error: cannot open results file '" << spec.results_path
                << "'\n";
      return 1;
    }
    writer.emplace(results_out, sc.name);
    ctx.results = &*writer;
  }
  const int rc = sc.run(spec, ctx);
  if (ctx.results) {
    writer->finish();
    results_out.flush();
    if (!results_out) {
      std::cerr << "error: short write to '" << spec.results_path << "'\n";
      return 1;
    }
    try {
      const ParsedResults parsed = parse_results_file(spec.results_path);
      std::cerr << "results: " << parsed.tables.size() << " table(s), "
                << parsed.total_rows() << " row(s) -> " << spec.results_path
                << "\n";
    } catch (const std::exception& e) {
      std::cerr << "error: results re-parse failed: " << e.what() << "\n";
      return 1;
    }
  }
  return rc;
}

void print_lab_usage(std::ostream& os) {
  os << "usage: timing_lab <command> [args]\n\n"
        "commands:\n"
        "  list                         all registered scenarios\n"
        "  describe <scenario> [key=value ...]\n"
        "                               defaults + override grammar; chaos\n"
        "                               scenarios print the resolved\n"
        "                               fault-plan timeline\n"
        "  run <scenario> [--csv] [--no-jsonl] [key=value ...]\n"
        "                               execute with overrides; results\n"
        "                               JSONL is written by default\n"
        "  validate <file>              strict-parse a results JSONL file\n"
        "                               or a fault-plan file (sniffed by\n"
        "                               the first byte)\n"
        "  help                         this text\n\n"
        "overrides:\n"
     << override_help();
}

int lab_list() {
  Table t({"scenario", "figure", "binary", "summary"});
  for (const Scenario& s : registry()) {
    t.add_row({s.name, s.figure, s.binary, s.summary});
  }
  t.print(std::cout, "Registered scenarios (" +
                         std::to_string(registry().size()) + ")");
  return 0;
}

int lab_describe(int argc, char** argv) {
  const std::string name = argv[2];
  const Scenario* sc = find_scenario(name);
  if (!sc) {
    std::cerr << "error: unknown scenario '" << name
              << "' (see `timing_lab list`)\n";
    return 2;
  }
  ScenarioSpec spec = sc->defaults();
  const CliArgs args = apply_cli_args(spec, argc, argv, 3);
  if (!args.error.empty()) {
    std::cerr << "error: " << args.error << "\n";
    return 2;
  }
  std::cout << sc->name << " - " << sc->figure << "\n"
            << sc->summary << "\n"
            << "binary: " << sc->binary << "\n\n"
            << (argc > 3 ? "resolved spec:\n" : "defaults:\n");
  print_spec(std::cout, spec);
  if (sc->figure == std::string("chaos") || !spec.fault_spec.empty()) {
    print_fault_timeline(std::cout, spec);
  }
  std::cout << "\noverrides:\n" << override_help();
  return 0;
}

int lab_run(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "error: run needs a scenario name (see `timing_lab "
                 "list`)\n";
    return 2;
  }
  const std::string name = argv[2];
  const Scenario* sc = find_scenario(name);
  if (!sc) {
    std::cerr << "error: unknown scenario '" << name
              << "' (see `timing_lab list`)\n";
    return 2;
  }
  ScenarioSpec spec = sc->defaults();
  if (spec.honor_env_runs) spec.runs = runs_or_default(spec.runs);
  // Structured results on by default; fig1c -> fig1c.results.jsonl,
  // ablation/smr_cost -> ablation_smr_cost.results.jsonl.
  std::string default_path = name;
  for (char& c : default_path) {
    if (c == '/') c = '_';
  }
  spec.results_path = default_path + ".results.jsonl";

  // `--no-jsonl` is a lab-only flag; filter it before the shared parser.
  std::vector<char*> rest;
  for (int i = 3; i < argc; ++i) {
    if (std::string(argv[i]) == "--no-jsonl") {
      spec.results_path.clear();
    } else {
      rest.push_back(argv[i]);
    }
  }
  const CliArgs args =
      apply_cli_args(spec, static_cast<int>(rest.size()), rest.data(), 0);
  if (args.help) {
    print_lab_usage(std::cout);
    return 0;
  }
  if (!args.error.empty()) {
    std::cerr << "error: " << args.error << "\n\n";
    print_lab_usage(std::cerr);
    return 2;
  }
  const std::string invalid = validate(spec);
  if (!invalid.empty()) {
    std::cerr << "error: invalid scenario parameters: " << invalid << "\n";
    return 2;
  }
  return execute(*sc, spec, args.csv);
}

int lab_validate(const std::string& path) {
  std::ifstream sniff(path);
  if (!sniff) {
    std::cerr << "error: cannot open '" << path << "'\n";
    return 1;
  }
  char first = 0;
  sniff >> first;  // first non-whitespace byte decides the format
  sniff.close();
  if (first == '{') {
    try {
      const ParsedResults parsed = parse_results_file(path);
      std::cout << "ok: scenario '" << parsed.scenario << "', schema v"
                << parsed.version << ", " << parsed.tables.size()
                << " table(s), " << parsed.total_rows() << " row(s)\n";
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  // Anything else is a fault-plan file; the parser reports
  // "<path>: line N: ..." and validate() names the offending event.
  const fault::ParseResult pr = fault::load_fault_plan(path);
  if (!pr.ok()) {
    std::cerr << "error: " << pr.error << "\n";
    return 1;
  }
  const int n = fault::min_processes(pr.plan);
  const std::string verr = fault::validate(pr.plan, n);
  if (!verr.empty()) {
    std::cerr << "error: " << path << ": " << verr << "\n";
    return 1;
  }
  std::cout << "ok: fault plan, " << pr.plan.events.size() << " event(s), "
            << (pr.plan.gsr >= 1
                    ? "gsr @" + std::to_string(pr.plan.gsr)
                    : std::string("no gsr marker (pure-safety plan)"))
            << ", fits n >= " << n << "\n";
  return 0;
}

}  // namespace

int bench_main(const char* name, int argc, char** argv) {
  const Scenario* sc = find_scenario(name);
  if (!sc) {
    std::cerr << "error: scenario '" << name << "' is not registered\n";
    return 2;
  }
  ScenarioSpec spec = sc->defaults();
  if (spec.honor_env_runs) spec.runs = runs_or_default(spec.runs);
  const CliArgs args = apply_cli_args(spec, argc, argv, 1);
  if (args.help) {
    print_bench_usage(std::cout, name, *sc);
    return 0;
  }
  if (!args.error.empty()) {
    std::cerr << "error: " << args.error << "\n\n";
    print_bench_usage(std::cerr, name, *sc);
    return 2;
  }
  const std::string invalid = validate(spec);
  if (!invalid.empty()) {
    std::cerr << "error: invalid scenario parameters: " << invalid << "\n";
    return 2;
  }
  return execute(*sc, spec, args.csv);
}

int lab_main(int argc, char** argv) {
  if (argc < 2) {
    print_lab_usage(std::cerr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "list") return lab_list();
  if (cmd == "describe") {
    if (argc < 3) {
      std::cerr << "error: describe needs a scenario name\n";
      return 2;
    }
    return lab_describe(argc, argv);
  }
  if (cmd == "run") return lab_run(argc, argv);
  if (cmd == "validate") {
    if (argc < 3) {
      std::cerr << "error: validate needs a results.jsonl path\n";
      return 2;
    }
    return lab_validate(argv[2]);
  }
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    print_lab_usage(std::cout);
    return 0;
  }
  std::cerr << "error: unknown command '" << cmd << "'\n\n";
  print_lab_usage(std::cerr);
  return 2;
}

}  // namespace timing::scenario

// The scenario implementations behind the registry — one function per
// paper figure / appendix / ablation, each the former body of the
// corresponding bench main() now parameterized by a ScenarioSpec.
// Internal to the scenario module; external callers go through
// registry()/find_scenario().
#pragma once

#include "scenario/run.hpp"
#include "scenario/spec.hpp"

namespace timing::scenario {

int run_fig1a(const ScenarioSpec& spec, const RunContext& ctx);
int run_fig1b(const ScenarioSpec& spec, const RunContext& ctx);
int run_fig1c(const ScenarioSpec& spec, const RunContext& ctx);
int run_fig1d(const ScenarioSpec& spec, const RunContext& ctx);
int run_fig1e(const ScenarioSpec& spec, const RunContext& ctx);
int run_fig1f(const ScenarioSpec& spec, const RunContext& ctx);
int run_fig1g(const ScenarioSpec& spec, const RunContext& ctx);
int run_fig1h(const ScenarioSpec& spec, const RunContext& ctx);
int run_fig1i(const ScenarioSpec& spec, const RunContext& ctx);
int run_appc_asymptotics(const ScenarioSpec& spec, const RunContext& ctx);
int run_ablation_paxos_recovery(const ScenarioSpec& spec,
                                const RunContext& ctx);
int run_ablation_algorithms_live(const ScenarioSpec& spec,
                                 const RunContext& ctx);
int run_ablation_window_formula(const ScenarioSpec& spec,
                                const RunContext& ctx);
int run_ablation_simulation_cost(const ScenarioSpec& spec,
                                 const RunContext& ctx);
int run_ablation_group_size(const ScenarioSpec& spec, const RunContext& ctx);
int run_ablation_smr_cost(const ScenarioSpec& spec, const RunContext& ctx);
int run_granular_fig1(const ScenarioSpec& spec, const RunContext& ctx);
int run_granular_ablation(const ScenarioSpec& spec, const RunContext& ctx);
int run_chaos_consensus(const ScenarioSpec& spec, const RunContext& ctx);
int run_chaos_single(const ScenarioSpec& spec, const RunContext& ctx);
int run_smr_linearizable(const ScenarioSpec& spec, const RunContext& ctx);
int run_smr_throughput(const ScenarioSpec& spec, const RunContext& ctx);
int run_adversary_search(const ScenarioSpec& spec, const RunContext& ctx);
int run_chaos_regression(const ScenarioSpec& spec, const RunContext& ctx);

}  // namespace timing::scenario

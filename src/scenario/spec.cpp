#include "scenario/spec.hpp"

#include "common/check.hpp"
#include "fault/parser.hpp"
#include "oracles/omega.hpp"

namespace timing::scenario {

std::string to_string(SamplerKind k) {
  switch (k) {
    case SamplerKind::kAnalysis: return "analysis";
    case SamplerKind::kLan: return "lan";
    case SamplerKind::kWan: return "wan";
    case SamplerKind::kIid: return "iid";
    case SamplerKind::kSchedule: return "schedule";
  }
  return "?";
}

std::string to_string(LeaderPolicy p) {
  switch (p) {
    case LeaderPolicy::kDefault: return "default";
    case LeaderPolicy::kAverage: return "average";
    case LeaderPolicy::kFixed: return "fixed";
  }
  return "?";
}

std::string validate(const ScenarioSpec& spec) {
  if (spec.runs < 1) return "runs must be >= 1";
  if (spec.rounds_per_run < 2) return "rounds_per_run must be >= 2";
  if (spec.start_points < 1) return "start_points must be >= 1";
  if (spec.n < 2) return "n must be >= 2";
  if (spec.iid_p <= 0.0 || spec.iid_p > 1.0) {
    return "iid_p must be in (0, 1]";
  }
  const bool latency_testbed =
      spec.sampler == SamplerKind::kLan || spec.sampler == SamplerKind::kWan;
  if (latency_testbed) {
    if (spec.timeouts_ms.empty()) return "empty timeout sweep";
    const int profile_n =
        spec.sampler == SamplerKind::kLan ? spec.lan.n : spec.wan.n;
    if (spec.n != profile_n) {
      return "n must match the " + to_string(spec.sampler) +
             " profile's group size (" + std::to_string(profile_n) + ")";
    }
  }
  for (double t : spec.timeouts_ms) {
    if (t <= 0.0) return "timeouts_ms entries must be > 0";
  }
  for (int r : spec.decision_rounds) {
    if (r < 1) return "decision_rounds entries must be >= 1";
  }
  if (spec.leader_policy == LeaderPolicy::kFixed &&
      (spec.leader < 0 || spec.leader >= spec.n)) {
    return "leader out of range [0, n)";
  }
  for (int gs : spec.group_sizes) {
    if (gs < 2) return "group_sizes entries must be >= 2";
  }
  if (spec.clients < 1) return "clients must be >= 1";
  if (spec.reg_keys < 0 || spec.append_keys < 0 ||
      spec.reg_keys + spec.append_keys < 1) {
    return "need at least one register or append key";
  }
  if (spec.clients + spec.reg_keys + spec.append_keys > 255 ||
      spec.reg_keys + spec.append_keys > 255) {
    return "clients + keys must fit the register command encoding (<= 255)";
  }
  if (spec.pipeline < 1) return "pipeline must be >= 1";
  if (spec.batch < 1) return "batch must be >= 1";
  if (!spec.corrupt_spec.empty() && spec.corrupt_spec != "none" &&
      spec.corrupt_spec != "stale" && spec.corrupt_spec != "lost") {
    return "corrupt must be one of none, stale, lost";
  }
  if (!spec.link_models.empty()) {
    LinkModelMatrix m;
    const std::string lerr = parse_link_models(spec.link_models, spec.n, m);
    if (!lerr.empty()) return "bad link_models: " + lerr;
  }
  for (double f : spec.async_fracs) {
    if (f < 0.0 || f > 1.0) return "async_fracs entries must be in [0, 1]";
  }
  if (spec.psync_frac < 0.0 || spec.psync_frac > 1.0) {
    return "psync_frac must be in [0, 1]";
  }
  if (spec.budget < 1) return "budget must be >= 1";
  if (spec.baseline < 0) return "baseline must be >= 0";
  if (!spec.fault_spec.empty()) {
    const fault::ParseResult pr = fault::load_fault_plan(spec.fault_spec);
    if (!pr.ok()) return "bad fault plan: " + pr.error;
    const ProcessId ld =
        spec.leader_policy == LeaderPolicy::kFixed ? spec.leader : kNoProcess;
    const std::string ferr = fault::validate(pr.plan, spec.n, ld);
    if (!ferr.empty()) return "bad fault plan: " + ferr;
  }
  return "";
}

ExperimentConfig to_experiment_config(const ScenarioSpec& spec) {
  ExperimentConfig cfg;
  cfg.testbed =
      spec.sampler == SamplerKind::kLan ? Testbed::kLan : Testbed::kWan;
  cfg.timeouts_ms = spec.timeouts_ms;
  cfg.runs = spec.runs;
  cfg.rounds_per_run = spec.rounds_per_run;
  cfg.start_points = spec.start_points;
  cfg.seed = spec.seed;
  cfg.lan = spec.lan;
  cfg.wan = spec.wan;
  cfg.decision_rounds = spec.decision_rounds;
  if (!spec.link_models.empty()) {
    const std::string lerr =
        parse_link_models(spec.link_models, spec.n, cfg.link_models);
    TM_CHECK(lerr.empty(), lerr.c_str());
  }
  switch (spec.leader_policy) {
    case LeaderPolicy::kDefault:
      cfg.leader = kNoProcess;
      break;
    case LeaderPolicy::kFixed:
      cfg.leader = spec.leader;
      break;
    case LeaderPolicy::kAverage:
      cfg.leader = pick_average_leader(expected_rtt_matrix(cfg));
      break;
  }
  return cfg;
}

ProcessId resolve_leader(const ScenarioSpec& spec) {
  return timing::resolve_leader(to_experiment_config(spec));
}

std::vector<TimeoutResult> run_experiment(const ScenarioSpec& spec) {
  const std::string err = validate(spec);
  TM_CHECK(err.empty(), err.c_str());
  return timing::run_experiment(to_experiment_config(spec));
}

}  // namespace timing::scenario

// Entry points for the two scenario surfaces:
//  * bench_main — the body of every migrated fig1*/ablation_* binary:
//    registry defaults (+ TIMING_RUNS where the figure sweeps honour it),
//    shared override grammar, optional results JSONL. Default invocation
//    prints exactly what the pre-registry binary printed.
//  * lab_main — tools/timing_lab: list / describe / run / validate over
//    the same registry, with results JSONL on by default for `run`.
#pragma once

namespace timing::scenario {

/// Run the registered scenario `name` as a bench binary over
/// argv[1..argc). Returns the process exit code (0 ok, 2 usage error).
int bench_main(const char* name, int argc, char** argv);

/// The timing_lab driver: argv[1] selects the subcommand.
int lab_main(int argc, char** argv);

}  // namespace timing::scenario

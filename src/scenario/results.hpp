// Schema-versioned results JSONL, the structured twin of the aligned
// tables every scenario prints. Same conventions as the trace format in
// obs/jsonl.hpp: one flat JSON object per line, a single header line,
// strict parsing that rejects anything malformed, and a footer that makes
// truncation detectable.
//
// Layout:
//   {"schema":"timing-lab-results","v":1,"scenario":"fig1g"}
//   {"e":"table","id":0,"caption":"...","cols":["timeout(ms)","ES(3r)"]}
//   {"e":"row","id":0,"v":["140","30.7"]}
//   ...
//   {"e":"end","tables":1,"rows":12}
//
// Row values are the exact printed cell strings (what --csv emits), so a
// results file is injective over the human-readable output and diffable
// across runs the way trace_tool diff treats traces.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace timing::scenario {

inline constexpr int kResultsSchemaVersion = 1;

/// Streams the results file; write_header first, then tables in emission
/// order, then finish() exactly once.
class ResultWriter {
 public:
  /// Does not own `out`; the caller keeps it alive past finish().
  ResultWriter(std::ostream& out, const std::string& scenario_name);

  void add_table(const std::string& caption,
                 const std::vector<std::string>& cols,
                 const std::vector<std::vector<std::string>>& rows);

  /// Writes the end marker; further add_table calls are invalid.
  void finish();

  int tables() const noexcept { return tables_; }
  long long rows() const noexcept { return rows_; }

 private:
  std::ostream& out_;
  int tables_ = 0;
  long long rows_ = 0;
  bool finished_ = false;
};

struct ResultTable {
  int id = 0;
  std::string caption;
  std::vector<std::string> cols;
  std::vector<std::vector<std::string>> rows;

  bool operator==(const ResultTable&) const = default;
};

struct ParsedResults {
  int version = 0;
  std::string scenario;
  std::vector<ResultTable> tables;

  long long total_rows() const noexcept;

  bool operator==(const ParsedResults&) const = default;
};

/// Strict parser; throws std::runtime_error with a line number on
/// malformed input: missing/duplicate header, unknown event, rows for an
/// undeclared table, row arity != the table's column count, a missing or
/// inconsistent end marker, or trailing lines after it. Blank lines and
/// '#' comments are skipped.
ParsedResults parse_results(std::istream& in);
ParsedResults parse_results_file(const std::string& path);

}  // namespace timing::scenario

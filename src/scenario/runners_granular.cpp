// Granular (per-link timing model) scenarios:
//  * granular/fig1 - the Figure 1 WAN sweep evaluated under a per-link
//    assignment of {sync, psync, async} (link_models=SPEC): measured P_M
//    for the granular predicates, per-class conformance, and the rounds
//    to the global-decision conditions. With link_models=sync:all the
//    model columns are byte-identical to fig1e/fig1g.
//  * granular/ablation - how the model comparison degrades as links drop
//    their timing obligations: sweep the async link fraction over seeded
//    mixed matrices and compare measured granular P_M on IID links
//    against the Poisson-binomial analysis (analysis/granular.hpp).
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/granular.hpp"
#include "common/table.hpp"
#include "harness/measurement.hpp"
#include "scenario/runners.hpp"
#include "sim/sampler.hpp"

namespace timing::scenario {

int run_granular_fig1(const ScenarioSpec& spec, const RunContext& ctx) {
  std::ostream& os = ctx.os();
  ScenarioSpec resolved = spec;
  if (resolved.link_models.empty()) resolved.link_models = "sync:all";
  const ExperimentConfig cfg = to_experiment_config(resolved);

  os << "leader: node " << timing::resolve_leader(cfg) << "\n";
  os << "link models (" << resolved.link_models << "): "
     << cfg.link_models.count(LinkModelClass::kSync) << " sync, "
     << cfg.link_models.count(LinkModelClass::kPartialSync) << " psync, "
     << cfg.link_models.count(LinkModelClass::kAsync) << " async\n\n";

  const auto rs = timing::run_experiment(cfg);

  Table pm({"timeout(ms)", "p", "P_ES", "P_AFM", "P_LM", "P_WLM", "C_sync",
            "C_psync", "C_async"});
  for (const auto& r : rs) {
    pm.add_row(
        {Table::num(r.timeout_ms, 0), Table::num(r.mean_p, 3),
         Table::num(r.models[model_index(TimingModel::kEs)].mean_pm, 3),
         Table::num(r.models[model_index(TimingModel::kAfm)].mean_pm, 3),
         Table::num(r.models[model_index(TimingModel::kLm)].mean_pm, 3),
         Table::num(r.models[model_index(TimingModel::kWlm)].mean_pm, 3),
         Table::num(r.mean_class_pm[0], 3), Table::num(r.mean_class_pm[1], 3),
         Table::num(r.mean_class_pm[2], 3)});
  }
  ctx.emit(pm,
           "Granular Figure 1: WAN, measured granular P_M per timeout and "
           "per-class conformance (C_x = fraction of rounds in which every "
           "class-x link was timely)");
  os << "\n";

  Table rounds({"timeout(ms)", "ES", "cens", "<>AFM", "<>LM", "<>WLM"});
  for (const auto& r : rs) {
    const auto& es = r.models[model_index(TimingModel::kEs)];
    rounds.add_row(
        {Table::num(r.timeout_ms, 0),
         (es.censored_fraction > 0 ? ">=" : "") + Table::num(es.mean_rounds, 1),
         Table::num(es.censored_fraction, 2),
         Table::num(r.models[model_index(TimingModel::kAfm)].mean_rounds, 1),
         Table::num(r.models[model_index(TimingModel::kLm)].mean_rounds, 1),
         Table::num(r.models[model_index(TimingModel::kWlm)].mean_rounds, 1)});
  }
  ctx.emit(rounds,
           "Granular Figure 1: WAN, average rounds until the granular "
           "global-decision conditions hold");
  return 0;
}

int run_granular_ablation(const ScenarioSpec& spec, const RunContext& ctx) {
  std::ostream& os = ctx.os();
  const int n = spec.n;
  const double p = spec.iid_p;
  const ProcessId leader =
      spec.leader_policy == LeaderPolicy::kFixed ? spec.leader : 0;
  analysis::GranularLinkProbs q;
  q.p_sync = q.p_psync = q.p_async = p;
  q.timely_self = true;  // the IID sampler forces self links timely

  os << "IID links at p = " << Table::num(p, 2) << ", n = " << n << ", "
     << spec.runs << " runs x " << spec.rounds_per_run
     << " rounds per point; psync share of non-async links = "
     << Table::num(spec.psync_frac, 2) << "\n\n";

  Table t({"async_frac", "async", "psync", "P_ES", "pred", "P_LM", "pred",
           "P_WLM", "pred", "P_AFM", "pred", "C_sync", "pred"});
  for (std::size_t fi = 0; fi < spec.async_fracs.size(); ++fi) {
    const double frac = spec.async_fracs[fi];
    // One seeded matrix per sweep point; the link streams below reuse the
    // same run sub-streams across points (paired design).
    const LinkModelMatrix m = LinkModelMatrix::mixed(
        n, frac, spec.psync_frac,
        substream_seed(spec.seed, static_cast<std::uint64_t>(fi)));
    const GranularContext g{m};

    std::array<double, kNumModels> pm{};
    double c_sync = 0.0;
    for (int run = 0; run < spec.runs; ++run) {
      IidTimelinessSampler sampler(
          n, p,
          substream_seed(spec.seed ^ 0x11d5eedULL,
                         static_cast<std::uint64_t>(run)));
      Rng start_rng =
          substream(spec.seed ^ 0xabcdef, static_cast<std::uint64_t>(run));
      const GranularStreamedRun r = measure_run_streaming_granular(
          sampler, spec.rounds_per_run, leader, spec.decision_rounds,
          spec.start_points, start_rng, g);
      for (int idx = 0; idx < kNumModels; ++idx) {
        pm[static_cast<std::size_t>(idx)] +=
            r.base.pm[static_cast<std::size_t>(idx)];
      }
      c_sync += r.class_pm[0];
    }
    for (double& v : pm) v /= spec.runs;
    c_sync /= spec.runs;

    auto meas_pred = [&](TimingModel model) {
      return std::vector<std::string>{
          Table::num(pm[static_cast<std::size_t>(model_index(model))], 3),
          Table::num(analysis::granular_p_model(model, m, leader, q), 3)};
    };
    std::vector<std::string> row{
        Table::num(frac, 2),
        Table::integer(m.count(LinkModelClass::kAsync)),
        Table::integer(m.count(LinkModelClass::kPartialSync))};
    for (TimingModel model :
         {TimingModel::kEs, TimingModel::kLm, TimingModel::kWlm,
          TimingModel::kAfm}) {
      for (auto& cell : meas_pred(model)) row.push_back(std::move(cell));
    }
    row.push_back(Table::num(c_sync, 3));
    row.push_back(Table::num(
        analysis::granular_p_class(m, LinkModelClass::kSync, q), 3));
    t.add_row(row);
  }
  ctx.emit(t,
           "Granular ablation: measured granular P_M on IID links vs the "
           "Poisson-binomial prediction as the async link fraction grows "
           "(async links carry no obligations and count towards no "
           "quorums; 'pred' columns from analysis/granular.hpp)");

  os << "\nReading: at async_frac=0 the granular predicates reduce to the "
        "homogeneous Section 4 comparison; as links go async, ES's "
        "requirement set shrinks (P_ES rises) while the quorum models "
        "lose candidate links (P_LM / P_AFM fall) - the model choice "
        "tradeoff is link-topology-dependent, not just p-dependent.\n";
  return 0;
}

}  // namespace timing::scenario

// Declarative experiment descriptions: every figure and ablation of the
// paper's evaluation (Section 5, Figures 1(a)-(i), the appendices, and
// our own ablations) is a named ScenarioSpec in the registry
// (scenario/registry.hpp) instead of a hand-wired main(). A spec carries
// the full parameter set an experiment family sweeps — testbed, sampler,
// algorithm, group sizes, timeout sweep, run shape, seeds, leader policy,
// decision-round requirements — so "run the WAN rounds figure at two
// timeouts with 2 runs" is a CLI override, not a recompile.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "consensus/factory.hpp"
#include "harness/experiments.hpp"
#include "sim/latency_model.hpp"

namespace timing::scenario {

/// What generates per-round timeliness for the scenario.
enum class SamplerKind {
  kAnalysis,  ///< no sampling: closed-form Section 4 / Appendix C curves
  kLan,       ///< calibrated LAN latency profile (Section 5.2)
  kWan,       ///< calibrated 8-site PlanetLab WAN profile (Section 5.3)
  kIid,       ///< IID Bernoulli(p) links (the Section 4 world, measured)
  kSchedule,  ///< adversarial / model-conforming schedules (live runs)
};

std::string to_string(SamplerKind k);

/// How the designated leader is chosen before a run.
enum class LeaderPolicy {
  kDefault,  ///< paper's method: UK site on the WAN, best LAN node
  kAverage,  ///< the "average leader" variant of Section 5.2
  kFixed,    ///< ScenarioSpec::leader names the process explicitly
};

std::string to_string(LeaderPolicy p);

struct ScenarioSpec {
  SamplerKind sampler = SamplerKind::kWan;
  /// Group size for single-n scenarios (the paper fixes n = 8).
  int n = 8;
  /// Per-link timely probability for IID samplers / analysis curves.
  double iid_p = 0.95;
  /// Round-timeout sweep (ms); required for latency-model scenarios.
  std::vector<double> timeouts_ms;
  /// Independent runs per sweep point. Scenario families reuse this as
  /// their natural repetition count: consensus instances for the live
  /// ablation, committed commands for the SMR ablation, Monte-Carlo
  /// trials for the window-formula ablation.
  int runs = 33;
  /// Rounds per run; doubles as the round cap for live-algorithm runs.
  int rounds_per_run = 300;
  /// Random decision-window start points per run (the paper uses 15).
  int start_points = 15;
  std::uint64_t seed = 42;
  LeaderPolicy leader_policy = LeaderPolicy::kDefault;
  /// Explicit leader; only consulted under LeaderPolicy::kFixed.
  ProcessId leader = kNoProcess;
  /// Rounds of conforming network needed for global decision per model
  /// (paper defaults: ES 3, LM 3, WLM 4, AFM 5).
  std::array<int, kNumModels> decision_rounds{3, 3, 4, 5};
  /// Protocol under test for live-run scenarios.
  AlgorithmKind algorithm = AlgorithmKind::kWlm;
  /// Group-size sweep for the n-scaling scenarios (empty = fixed n).
  std::vector<int> group_sizes;
  /// Honour TIMING_RUNS (the paper-figure sweeps do; ablations pin their
  /// repetition counts).
  bool honor_env_runs = false;
  LanProfile lan{};
  WanProfile wan{};
  /// Results JSONL output path; empty disables structured emission.
  std::string results_path;
  /// Fault plan (`fault=` override): a plan-file path or an inline
  /// ';'-separated spec (grammar in fault/parser.hpp). Empty = no
  /// injection; the chaos/* scenarios then generate a fresh seeded
  /// random plan per trial.
  std::string fault_spec;
  /// Closed-loop SMR clients per trial (smr/linearizable only).
  int clients = 4;
  /// Register keys (read/write/cas) per trial (smr/linearizable only).
  int reg_keys = 2;
  /// Append (hash-chain) keys per trial (smr/linearizable only).
  int append_keys = 1;
  /// Test-only corruption hook (`corrupt=` override): "" or "none" = off,
  /// "stale" = stale probe read, "lost" = acknowledged lost append
  /// (smr/linearizable only; see smr/client.hpp's CorruptMode).
  std::string corrupt_spec;
  /// Consensus instances kept in flight by the replicated-log scenarios
  /// (smr/throughput; smr/linearizable switches to the pipelined harness
  /// when pipeline or batch exceeds 1). 1 = fully serialized.
  int pipeline = 1;
  /// Commands batched into one decree per log slot (the flush deadline
  /// still seals partial batches). 1 = one command per slot.
  int batch = 1;
  /// Per-link timing assumptions (`link_models=` override): a spec in the
  /// grammar of models/link_model_matrix.hpp, e.g.
  /// "sync:all;async:0->2,3->*". Empty = homogeneous (every link carries
  /// the model's obligations, the pre-granular behaviour); "sync:all"
  /// reproduces the homogeneous results bit-for-bit.
  std::string link_models;
  /// Async link-fraction sweep for granular/ablation (each point builds a
  /// seeded LinkModelMatrix::mixed with this fraction of async links).
  std::vector<double> async_fracs;
  /// Fraction of the remaining (non-async) links made partial-sync in the
  /// mixed matrices of the granular/ablation sweep.
  double psync_frac = 0.0;
  /// Chaos-evaluation budget for the adversary hunt (`budget=` override,
  /// adversary/search only). The search runs whole generations, so the
  /// spent count rounds up to a multiple of its walker count.
  int budget = 2000;
  /// Uniform random_fault_plan samples the hunt must beat
  /// (adversary/search). 0 disables the comparison gate.
  int baseline = 0;
  /// Archive directory (`archive=` override): adversary/search writes
  /// minimized winners there; chaos/regression replays every *.plan in
  /// it. Empty keeps the hunt's winners in the report only.
  std::string archive;
};

/// Empty string when the spec is coherent; otherwise a one-line reason
/// (first violation wins). Checked before every scenario run and by the
/// override parser's callers.
std::string validate(const ScenarioSpec& spec);

/// Lower the declarative spec onto the harness execution config.
/// LeaderPolicy is resolved here (kAverage elects the average leader from
/// the testbed's expected-RTT matrix).
ExperimentConfig to_experiment_config(const ScenarioSpec& spec);

/// The leader the spec resolves to on its testbed (kDefault follows the
/// paper's method; kAverage elects the average leader).
ProcessId resolve_leader(const ScenarioSpec& spec);

/// Validate + lower + run the Section 5 sweep kernel
/// (harness/experiments.hpp) for a latency-testbed spec.
std::vector<TimeoutResult> run_experiment(const ScenarioSpec& spec);

}  // namespace timing::scenario

#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace timing {

namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in a{};
  a.sin_family = AF_INET;
  a.sin_port = htons(port);
  a.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return a;
}

}  // namespace

UdpTransport::UdpTransport(ProcessId self, int n, std::uint16_t base_port)
    : self_(self), n_(n), base_port_(base_port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  // No SO_REUSEADDR: UDP has no TIME_WAIT, and the option would let two
  // nodes silently share a port (stealing each other's datagrams).
  sockaddr_in addr = loopback_addr(port_of(self));
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(std::string("bind port ") +
                             std::to_string(port_of(self)) + ": " +
                             std::strerror(err));
  }
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

bool UdpTransport::send(ProcessId dst, const Bytes& bytes) {
  if (dst < 0 || dst >= n_) return false;
  sockaddr_in addr = loopback_addr(port_of(dst));
  const ssize_t sent =
      ::sendto(fd_, bytes.data(), bytes.size(), 0,
               reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (sent != static_cast<ssize_t>(bytes.size())) {
    // Local send failure (full socket buffer, etc.) - the datagram never
    // left this host.
    trace_emit(trace_sink_, TraceEvent::msg(EventKind::kMsgLost, 0,
                                            self_, dst));
    return false;
  }
  return true;
}

bool UdpTransport::recv(Bytes& out, ProcessId& from,
                        Clock::time_point deadline) {
  for (;;) {
    const auto now = Clock::now();
    if (now >= deadline) return false;
    const auto wait_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             deadline - now)
                             .count();
    pollfd pfd{fd_, POLLIN, 0};
    const int rv = ::poll(&pfd, 1, static_cast<int>(std::max<long long>(
                                       1, static_cast<long long>(wait_ms))));
    if (rv < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rv == 0) continue;  // poll's ms wait is truncated; the loop's
                            // deadline check decides the real timeout
    out.resize(65536);
    sockaddr_in src{};
    socklen_t srclen = sizeof src;
    const ssize_t got =
        ::recvfrom(fd_, out.data(), out.size(), 0,
                   reinterpret_cast<sockaddr*>(&src), &srclen);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    out.resize(static_cast<std::size_t>(got));
    const int port = ntohs(src.sin_port);
    from = static_cast<ProcessId>(port - base_port_);
    if (from < 0 || from >= n_) {
      // Stray datagram from an unknown port - dropped. The true source
      // has no ProcessId, so the event reports src == self (see
      // Transport::set_trace_sink).
      trace_emit(trace_sink_, TraceEvent::msg(EventKind::kMsgLost, 0,
                                              self_, self_));
      continue;
    }
    return true;
  }
}

}  // namespace timing

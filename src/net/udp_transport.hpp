// Real UDP sockets on the loopback interface: node i binds
// 127.0.0.1:(base_port + i). Used by the end-to-end integration tests and
// the wan_testbed example, so the library is exercised over an actual
// kernel network path, not only the in-process hub.
#pragma once

#include "net/transport.hpp"

namespace timing {

class UdpTransport final : public Transport {
 public:
  /// Throws std::runtime_error when the socket cannot be created/bound
  /// (e.g. the port is taken).
  UdpTransport(ProcessId self, int n, std::uint16_t base_port);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  bool send(ProcessId dst, const Bytes& bytes) override;
  bool recv(Bytes& out, ProcessId& from, Clock::time_point deadline) override;
  ProcessId self() const noexcept override { return self_; }

  std::uint16_t port_of(ProcessId i) const noexcept {
    return static_cast<std::uint16_t>(base_port_ + i);
  }

 private:
  ProcessId self_;
  int n_;
  std::uint16_t base_port_;
  int fd_ = -1;
};

}  // namespace timing

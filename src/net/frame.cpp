#include "net/frame.hpp"

namespace timing {

namespace {

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::optional<std::uint64_t> get_u64(std::span<const std::uint8_t> in) {
  if (in.size() != 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

}  // namespace

void frame_envelope(const Envelope& e, Bytes& out) {
  out.push_back(static_cast<std::uint8_t>(FrameTag::kEnvelope));
  encode(e, out);
}

void frame_ping(const PingFrame& p, Bytes& out) {
  out.push_back(static_cast<std::uint8_t>(FrameTag::kPing));
  put_u64(out, p.nonce);
}

void frame_pong(const PongFrame& p, Bytes& out) {
  out.push_back(static_cast<std::uint8_t>(FrameTag::kPong));
  put_u64(out, p.nonce);
}

std::optional<Frame> parse_frame(std::span<const std::uint8_t> in) {
  if (in.empty()) return std::nullopt;
  const auto tag = static_cast<FrameTag>(in[0]);
  const auto body = in.subspan(1);
  switch (tag) {
    case FrameTag::kEnvelope: {
      auto e = decode(body);
      if (!e) return std::nullopt;
      return Frame{*e};
    }
    case FrameTag::kPing: {
      auto v = get_u64(body);
      if (!v) return std::nullopt;
      return Frame{PingFrame{*v}};
    }
    case FrameTag::kPong: {
      auto v = get_u64(body);
      if (!v) return std::nullopt;
      return Frame{PongFrame{*v}};
    }
  }
  return std::nullopt;
}

}  // namespace timing

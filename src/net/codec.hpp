// Wire format for GIRAF messages.
//
// A small hand-rolled binary codec: little-endian fixed-width integers,
// length-prefixed recursive relay payloads, and a defensive decoder that
// rejects malformed or truncated input (the UDP transport hands us raw
// datagrams). The envelope carries the GIRAF round number and the sender,
// which is exactly what the Section 5.1 round-synchronization protocol
// needs ("this information is included in the message").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "giraf/message.hpp"

namespace timing {

struct Envelope {
  Round round = 0;
  ProcessId sender = kNoProcess;
  Message msg;
  /// Causal span context (obs/span.hpp): the sender's message-span id,
  /// 0 when span tracing is off. Rides the wire so the receiver can
  /// record a causality edge from the arriving message to its round;
  /// FaultInjectedTransport forwards raw frames, so the field passes
  /// through every transport decorator untouched.
  std::uint64_t span = 0;

  bool operator==(const Envelope&) const = default;
};

/// Serialize; appends to `out`.
void encode(const Envelope& e, std::vector<std::uint8_t>& out);

/// Parse one envelope occupying the whole buffer. Returns std::nullopt on
/// malformed input. Depth of nested relays is capped to reject hostile
/// recursion.
std::optional<Envelope> decode(std::span<const std::uint8_t> in);

}  // namespace timing

// Pre-run latency estimation (Section 5.1): every node measures the
// average round-trip time to every peer with ping/pong probes. The
// results feed (a) round synchronization (L_i[j] in the fast-forward
// rule) and (b) offline leader election (elect_well_connected).
#pragma once

#include <chrono>
#include <vector>

#include "net/transport.hpp"

namespace timing {

struct PingConfig {
  int pings_per_peer = 10;
  std::chrono::milliseconds probe_interval{5};
  std::chrono::milliseconds total_duration{2000};
};

struct PingReport {
  /// Average RTT to each peer in ms; rtt[self] == 0. Peers that never
  /// answered get kUnreachableMs.
  std::vector<double> avg_rtt_ms;
  std::vector<int> replies;  ///< pongs received per peer

  static constexpr double kUnreachableMs = 1e9;

  /// L_i[j]: one-way latency estimate = RTT / 2.
  double one_way_ms(ProcessId j) const { return avg_rtt_ms[j] / 2.0; }
};

/// Runs the probe loop (answering peers' pings while measuring); all
/// participating nodes must run this concurrently. Returns when
/// `total_duration` elapses or every peer answered `pings_per_peer`
/// times.
PingReport measure_peer_rtts(Transport& transport, int n,
                             const PingConfig& cfg = {});

}  // namespace timing

#include "net/ping.hpp"

#include <unordered_map>

#include "net/frame.hpp"

namespace timing {

PingReport measure_peer_rtts(Transport& transport, int n,
                             const PingConfig& cfg) {
  const ProcessId self = transport.self();
  PingReport report;
  report.avg_rtt_ms.assign(static_cast<std::size_t>(n),
                           PingReport::kUnreachableMs);
  report.replies.assign(static_cast<std::size_t>(n), 0);
  std::vector<double> rtt_sum(static_cast<std::size_t>(n), 0.0);
  std::vector<int> sent(static_cast<std::size_t>(n), 0);

  struct Outstanding {
    ProcessId peer;
    Clock::time_point sent_at;
  };
  std::unordered_map<std::uint64_t, Outstanding> outstanding;
  std::uint64_t next_nonce =
      (static_cast<std::uint64_t>(self) << 48) + 1;  // globally unique

  const auto start = Clock::now();
  const auto deadline = start + cfg.total_duration;
  auto next_probe = start;

  Bytes buf;
  for (;;) {
    const auto now = Clock::now();
    if (now >= deadline) break;
    bool all_done = true;
    for (ProcessId j = 0; j < n; ++j) {
      if (j != self && report.replies[j] < cfg.pings_per_peer) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;

    if (now >= next_probe) {
      for (ProcessId j = 0; j < n; ++j) {
        if (j == self || sent[j] >= 4 * cfg.pings_per_peer ||
            report.replies[j] >= cfg.pings_per_peer) {
          continue;
        }
        const std::uint64_t nonce = next_nonce++;
        outstanding[nonce] = Outstanding{j, Clock::now()};
        Bytes out;
        frame_ping(PingFrame{nonce}, out);
        transport.send(j, out);
        ++sent[j];
      }
      next_probe = now + cfg.probe_interval;
    }

    ProcessId from = kNoProcess;
    if (!transport.recv(buf, from, std::min(deadline, next_probe))) continue;
    auto frame = parse_frame(buf);
    if (!frame) {
      // Malformed frame - dropped here, visible through the transport's
      // sink (round 0 = below the round abstraction).
      trace_emit(transport.trace_sink(),
                 TraceEvent::msg(EventKind::kMsgLost, 0, from, self));
      continue;
    }
    if (const auto* ping = std::get_if<PingFrame>(&*frame)) {
      Bytes out;
      frame_pong(PongFrame{ping->nonce}, out);
      transport.send(from, out);
    } else if (const auto* pong = std::get_if<PongFrame>(&*frame)) {
      auto it = outstanding.find(pong->nonce);
      if (it != outstanding.end() && it->second.peer == from) {
        const double rtt =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      it->second.sent_at)
                .count();
        rtt_sum[from] += rtt;
        ++report.replies[from];
        outstanding.erase(it);
      }
    } else {
      // Envelopes arriving early (a peer already past the ping phase) are
      // dropped here; round synchronization resynchronizes regardless.
      trace_emit(transport.trace_sink(),
                 TraceEvent::msg(EventKind::kMsgLost, 0, from, self));
    }
  }

  for (ProcessId j = 0; j < n; ++j) {
    if (j == self) {
      report.avg_rtt_ms[j] = 0.0;
    } else if (report.replies[j] > 0) {
      report.avg_rtt_ms[j] = rtt_sum[j] / report.replies[j];
    }
  }
  return report;
}

}  // namespace timing

#include "net/codec.hpp"

#include <cstring>

namespace timing {

namespace {

constexpr int kMaxRelayDepth = 4;
constexpr std::size_t kMaxRelayFanout = 4096;

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> in) : in_(in) {}

  bool ok() const noexcept { return ok_; }
  bool done() const noexcept { return pos_ == in_.size(); }

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(take(4)); }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

 private:
  std::uint64_t take(std::size_t bytes) {
    if (!ok_ || in_.size() - pos_ < bytes) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(in_[pos_ + i]) << (8 * i);
    }
    pos_ += bytes;
    return v;
  }

  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void encode_message(const Message& m, std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(m.type));
  put_i64(out, m.est);
  put_i32(out, m.ts);
  put_i32(out, m.leader);
  put_u8(out, m.maj_approved ? 1 : 0);
  put_u8(out, m.heard_maj ? 1 : 0);
  put_i32(out, m.ballot);
  put_i32(out, m.accepted_ballot);
  put_i64(out, m.accepted_value);
  put_u32(out, static_cast<std::uint32_t>(m.punish.size()));
  for (Timestamp p : m.punish) put_i32(out, p);
  put_u32(out, static_cast<std::uint32_t>(m.relay_from.size()));
  for (std::size_t i = 0; i < m.relay_from.size(); ++i) {
    put_i32(out, m.relay_from[i]);
    encode_message(m.relay_msgs[i], out);
  }
}

bool decode_message(Reader& r, Message& m, int depth) {
  if (depth > kMaxRelayDepth) return false;
  const std::uint8_t type = r.u8();
  if (type > static_cast<std::uint8_t>(MsgType::kRelay)) return false;
  m.type = static_cast<MsgType>(type);
  m.est = r.i64();
  m.ts = r.i32();
  m.leader = r.i32();
  m.maj_approved = r.u8() != 0;
  m.heard_maj = r.u8() != 0;
  m.ballot = r.i32();
  m.accepted_ballot = r.i32();
  m.accepted_value = r.i64();
  const std::uint32_t punishes = r.u32();
  if (!r.ok() || punishes > kMaxRelayFanout) return false;
  m.punish.resize(punishes);
  for (std::uint32_t i = 0; i < punishes; ++i) m.punish[i] = r.i32();
  const std::uint32_t fanout = r.u32();
  if (!r.ok() || fanout > kMaxRelayFanout) return false;
  m.relay_from.resize(fanout);
  m.relay_msgs.resize(fanout);
  for (std::uint32_t i = 0; i < fanout; ++i) {
    m.relay_from[i] = r.i32();
    if (!decode_message(r, m.relay_msgs[i], depth + 1)) return false;
  }
  return r.ok();
}

}  // namespace

void encode(const Envelope& e, std::vector<std::uint8_t>& out) {
  put_i32(out, e.round);
  put_i32(out, e.sender);
  put_u64(out, e.span);
  encode_message(e.msg, out);
}

std::optional<Envelope> decode(std::span<const std::uint8_t> in) {
  Reader r(in);
  Envelope e;
  e.round = r.i32();
  e.sender = r.i32();
  e.span = r.u64();
  if (!decode_message(r, e.msg, 0)) return std::nullopt;
  if (!r.ok() || !r.done()) return std::nullopt;
  return e;
}

}  // namespace timing

#include "net/transport.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace timing {

InProcHub::InProcHub(int n) : n_(n), cv_(static_cast<std::size_t>(n)),
                              queues_(static_cast<std::size_t>(n)) {
  TM_CHECK(n > 0, "hub needs n > 0");
}

void InProcHub::set_latency_model(std::unique_ptr<LatencyModel> model,
                                  double round_ms) {
  std::lock_guard lk(mu_);
  TM_CHECK(model == nullptr || model->n() >= n_, "model too small for hub");
  model_ = std::move(model);
  round_ms_ = round_ms;
  model_epoch_ = Clock::now();
  model_round_ = 0;
  if (model_) model_->begin_round(1);
}

void InProcHub::advance_model_locked() {
  if (!model_ || round_ms_ <= 0.0) return;
  const auto elapsed = std::chrono::duration<double, std::milli>(
                           Clock::now() - model_epoch_)
                           .count();
  const auto target = static_cast<long long>(elapsed / round_ms_);
  // Catch up, but never spin unboundedly after a long pause.
  int steps = 0;
  while (model_round_ < target && steps < 1024) {
    ++model_round_;
    ++steps;
    model_->begin_round(static_cast<Round>(model_round_ + 1));
  }
  model_round_ = std::max(model_round_, target);
}

bool InProcHub::post(ProcessId src, ProcessId dst, const Bytes& bytes) {
  TM_CHECK(dst >= 0 && dst < n_, "destination out of range");
  std::lock_guard lk(mu_);
  auto due = Clock::now();
  if (model_) {
    advance_model_locked();
    const double ms = model_->sample_ms(src, dst);
    if (!std::isfinite(ms)) return false;  // lost
    due += std::chrono::microseconds(static_cast<long long>(ms * 1000.0));
  }
  auto& q = queues_[static_cast<std::size_t>(dst)];
  Packet p{due, src, bytes};
  // Keep the queue sorted by due time (insertion near the back is the
  // common case - latencies are similar).
  auto it = std::upper_bound(
      q.begin(), q.end(), p,
      [](const Packet& a, const Packet& b) { return a.due < b.due; });
  q.insert(it, std::move(p));
  cv_[static_cast<std::size_t>(dst)].notify_all();
  return true;
}

bool InProcHub::take(ProcessId dst, Bytes& out, ProcessId& from,
                     Clock::time_point deadline) {
  TM_CHECK(dst >= 0 && dst < n_, "destination out of range");
  std::unique_lock lk(mu_);
  auto& q = queues_[static_cast<std::size_t>(dst)];
  auto& cv = cv_[static_cast<std::size_t>(dst)];
  for (;;) {
    const auto now = Clock::now();
    if (!q.empty() && q.front().due <= now) {
      out = std::move(q.front().bytes);
      from = q.front().from;
      q.pop_front();
      return true;
    }
    if (now >= deadline) return false;
    auto wake = deadline;
    if (!q.empty()) wake = std::min(wake, q.front().due);
    cv.wait_until(lk, wake);
  }
}

}  // namespace timing

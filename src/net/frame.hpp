// Transport-level framing: one tag byte distinguishes GIRAF envelopes
// from the ping/pong probes used for latency estimation (Section 5.1/5.2:
// "Before starting the experiments, we measure the average latency
// between every pair of nodes in the system using pings").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>

#include "net/codec.hpp"
#include "net/transport.hpp"

namespace timing {

enum class FrameTag : std::uint8_t { kEnvelope = 0, kPing = 1, kPong = 2 };

struct PingFrame {
  std::uint64_t nonce = 0;
};
struct PongFrame {
  std::uint64_t nonce = 0;
};

using Frame = std::variant<Envelope, PingFrame, PongFrame>;

void frame_envelope(const Envelope& e, Bytes& out);
void frame_ping(const PingFrame& p, Bytes& out);
void frame_pong(const PongFrame& p, Bytes& out);

/// Returns std::nullopt on malformed input.
std::optional<Frame> parse_frame(std::span<const std::uint8_t> in);

}  // namespace timing

// Datagram transports.
//
// The paper's experiments exchange UDP datagrams ("Each process sent 100
// UDP messages to all others"). We provide:
//  * InProcHub / InProcTransport - an in-process datagram switch with
//    optional per-message latency injection from a LatencyModel, used to
//    stand in for the LAN/WAN testbeds while exercising the exact same
//    code paths as real sockets;
//  * UdpTransport (udp_transport.hpp) - real UDP sockets on loopback.
//
// Semantics (both transports): unreliable, unordered datagrams; send()
// never blocks; recv() blocks up to a deadline.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/trace_sink.hpp"
#include "sim/latency_model.hpp"

namespace timing {

using Bytes = std::vector<std::uint8_t>;
using Clock = std::chrono::steady_clock;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Fire-and-forget datagram. Returns false only on local failure (the
  /// network may still drop it silently).
  virtual bool send(ProcessId dst, const Bytes& bytes) = 0;

  /// Blocking receive with deadline; returns false on timeout.
  virtual bool recv(Bytes& out, ProcessId& from, Clock::time_point deadline) = 0;

  virtual ProcessId self() const noexcept = 0;

  /// Observe transport-level drops (MsgLost with round 0, since these
  /// happen below the round abstraction). Sink is caller-owned; null
  /// disables. Transports whose drop source is unattributable (e.g. a
  /// stray datagram from an unknown port) report src == self.
  void set_trace_sink(TraceSink* sink) noexcept { trace_sink_ = sink; }
  TraceSink* trace_sink() const noexcept { return trace_sink_; }

 protected:
  TraceSink* trace_sink_ = nullptr;
};

/// Shared switch for InProcTransport endpoints. Thread-safe. If a latency
/// model is installed, each datagram is delayed by a sampled one-way
/// latency (and dropped on a loss sample), turning the hub into a
/// miniature WAN.
class InProcHub {
 public:
  explicit InProcHub(int n);

  /// Install a latency model (hub takes ownership). The model's
  /// begin_round is driven by wall time: we call it once per
  /// `round_ms` of elapsed time so episode processes advance.
  void set_latency_model(std::unique_ptr<LatencyModel> model,
                         double round_ms);

  int n() const noexcept { return n_; }

  /// Returns false when the latency model sampled a loss (the datagram
  /// was dropped at the "wire"); senders may surface that to a sink.
  bool post(ProcessId src, ProcessId dst, const Bytes& bytes);
  bool take(ProcessId dst, Bytes& out, ProcessId& from,
            Clock::time_point deadline);

 private:
  struct Packet {
    Clock::time_point due;
    ProcessId from;
    Bytes bytes;
  };

  void advance_model_locked();

  int n_;
  std::mutex mu_;
  std::vector<std::condition_variable> cv_;
  std::vector<std::deque<Packet>> queues_;  // sorted insert by due time
  std::unique_ptr<LatencyModel> model_;
  double round_ms_ = 0.0;
  Clock::time_point model_epoch_{};
  long long model_round_ = 0;
};

class InProcTransport final : public Transport {
 public:
  InProcTransport(std::shared_ptr<InProcHub> hub, ProcessId self)
      : hub_(std::move(hub)), self_(self) {}

  bool send(ProcessId dst, const Bytes& bytes) override {
    if (!hub_->post(self_, dst, bytes)) {
      // Wire-level loss sampled by the hub's latency model.
      trace_emit(trace_sink_, TraceEvent::msg(EventKind::kMsgLost, 0,
                                              self_, dst));
    }
    return true;  // local send succeeded; the "network" ate it
  }
  bool recv(Bytes& out, ProcessId& from, Clock::time_point deadline) override {
    return hub_->take(self_, out, from, deadline);
  }
  ProcessId self() const noexcept override { return self_; }

 private:
  std::shared_ptr<InProcHub> hub_;
  ProcessId self_;
};

}  // namespace timing

// Datagram transports.
//
// The paper's experiments exchange UDP datagrams ("Each process sent 100
// UDP messages to all others"). We provide:
//  * InProcHub / InProcTransport - an in-process datagram switch with
//    optional per-message latency injection from a LatencyModel, used to
//    stand in for the LAN/WAN testbeds while exercising the exact same
//    code paths as real sockets;
//  * UdpTransport (udp_transport.hpp) - real UDP sockets on loopback.
//
// Semantics (both transports): unreliable, unordered datagrams; send()
// never blocks; recv() blocks up to a deadline.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/latency_model.hpp"

namespace timing {

using Bytes = std::vector<std::uint8_t>;
using Clock = std::chrono::steady_clock;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Fire-and-forget datagram. Returns false only on local failure (the
  /// network may still drop it silently).
  virtual bool send(ProcessId dst, const Bytes& bytes) = 0;

  /// Blocking receive with deadline; returns false on timeout.
  virtual bool recv(Bytes& out, ProcessId& from, Clock::time_point deadline) = 0;

  virtual ProcessId self() const noexcept = 0;
};

/// Shared switch for InProcTransport endpoints. Thread-safe. If a latency
/// model is installed, each datagram is delayed by a sampled one-way
/// latency (and dropped on a loss sample), turning the hub into a
/// miniature WAN.
class InProcHub {
 public:
  explicit InProcHub(int n);

  /// Install a latency model (hub takes ownership). The model's
  /// begin_round is driven by wall time: we call it once per
  /// `round_ms` of elapsed time so episode processes advance.
  void set_latency_model(std::unique_ptr<LatencyModel> model,
                         double round_ms);

  int n() const noexcept { return n_; }

  void post(ProcessId src, ProcessId dst, const Bytes& bytes);
  bool take(ProcessId dst, Bytes& out, ProcessId& from,
            Clock::time_point deadline);

 private:
  struct Packet {
    Clock::time_point due;
    ProcessId from;
    Bytes bytes;
  };

  void advance_model_locked();

  int n_;
  std::mutex mu_;
  std::vector<std::condition_variable> cv_;
  std::vector<std::deque<Packet>> queues_;  // sorted insert by due time
  std::unique_ptr<LatencyModel> model_;
  double round_ms_ = 0.0;
  Clock::time_point model_epoch_{};
  long long model_round_ = 0;
};

class InProcTransport final : public Transport {
 public:
  InProcTransport(std::shared_ptr<InProcHub> hub, ProcessId self)
      : hub_(std::move(hub)), self_(self) {}

  bool send(ProcessId dst, const Bytes& bytes) override {
    hub_->post(self_, dst, bytes);
    return true;
  }
  bool recv(Bytes& out, ProcessId& from, Clock::time_point deadline) override {
    return hub_->take(self_, out, from, deadline);
  }
  ProcessId self() const noexcept override { return self_; }

 private:
  std::shared_ptr<InProcHub> hub_;
  ProcessId self_;
};

}  // namespace timing

// A leader-based consensus algorithm for the <>LM model that reaches
// global decision in 3 rounds from GSR - the library's stand-in for the
// optimal <>LM algorithm of [19] (see DESIGN.md section 4).
//
// Like all protocols in [19], it broadcasts every round (Theta(n^2)
// stable-state messages) - this is precisely the message-complexity cost
// that the paper's Algorithm 2 removes.
//
// Message: <type, est, ts, leader, heardMaj> where leader is the sender's
// current Omega output and heardMaj says the sender received messages
// from a majority in the previous round.
//
// End of round k (if not decided):
//   decide-1: on any received DECIDE.
//   decide-2: > n/2 received COMMIT(v, ts=k-1) including my own -> decide.
//   commit:   if some process L is named leader by > n/2 of the round-k
//             messages, and L's own round-k message was received and
//             carries heardMaj = true, adopt L's estimate with ts = k.
//   prepare:  otherwise adopt maxEST/maxTS.
//
// Safety: two same-round commits use the same L (vote majorities
// intersect) and hence the same single message, so they agree; L's
// heardMaj certifies that L's estimate reflects a majority of the
// previous round, which must include a witness of any decided value
// (the same argument as the paper's use of majApproved in Lemma 5).
//
// Liveness in <>LM: from GSR, every correct process receives from a
// majority each round and from the leader (an n-source). Round GSR+1
// messages all name the stable leader L and carry heardMaj; hence at end
// of GSR+1 every correct process commits L's estimate, and at end of
// GSR+2 everyone observes a majority of fresh COMMITs: global decision by
// GSR+2, i.e. 3 rounds.
#pragma once

#include "giraf/protocol.hpp"

namespace timing {

class Lm3Consensus final : public Protocol {
 public:
  Lm3Consensus(ProcessId self, int n, Value proposal);

  SendSpec initialize(ProcessId leader_hint) override;
  SendSpec compute(Round k, const RoundMsgs& received,
                   ProcessId leader_hint) override;

  bool has_decided() const noexcept override { return dec_ != kNoValue; }
  Value decision() const noexcept override { return dec_; }
  Timestamp current_ts() const noexcept override { return ts_; }
  Value current_est() const noexcept override { return est_; }

  std::unique_ptr<Protocol> clone() const override {
    return std::make_unique<Lm3Consensus>(*this);
  }

 private:
  SendSpec make_send() const;

  const ProcessId self_;
  const int n_;
  Value est_;
  Timestamp ts_ = 0;
  ProcessId new_ld_ = kNoProcess;
  bool heard_maj_ = false;
  MsgType msg_type_ = MsgType::kPrepare;
  Value dec_ = kNoValue;
};

}  // namespace timing

// Single-decree Paxos [21], cast into GIRAF rounds - the library's
// baseline protocol.
//
// Why it is here: the <>WLM model "satisfies the progress requirements of
// the well-known Paxos protocol", but, as [13] observed and the paper's
// Section 3 recounts, Paxos may need a LINEAR number of rounds after GSR
// in <>WLM: the leader discovers higher promised ballots one at a time
// (each mobile majority can reveal just one new NACK) and restarts its
// ballot each time. Algorithm 2 avoids the chase by using round numbers
// as timestamps and the majApproved certificate. bench/ablation_paxos_
// recovery measures exactly this contrast.
//
// Mapping to rounds (lock-step): each protocol phase costs two rounds -
// one for the leader's message to circulate, one for the acceptors'
// replies. A clean ballot therefore runs PREPARE (2 rounds), ACCEPT
// (2 rounds), DECIDE broadcast (1 round): global decision in 5 stable
// rounds with an uncontended ballot, matching Algorithm 2's constant -
// the difference shows only under contention/recovery.
//
// Roles: every process is an acceptor; the Omega leader acts as the
// proposer. Ballots are made proposer-unique by the classic b mod n = i
// scheme. A new ballot is chosen as the smallest valid number above every
// ballot the proposer has seen (promised or NACKed) - the "chasing" rule.
#pragma once

#include "giraf/protocol.hpp"

namespace timing {

class PaxosConsensus final : public Protocol {
 public:
  PaxosConsensus(ProcessId self, int n, Value proposal);

  SendSpec initialize(ProcessId leader_hint) override;
  SendSpec compute(Round k, const RoundMsgs& received,
                   ProcessId leader_hint) override;

  bool has_decided() const noexcept override { return dec_ != kNoValue; }
  Value decision() const noexcept override { return dec_; }
  Timestamp current_ts() const noexcept override { return accepted_ballot_; }
  Value current_est() const noexcept override {
    return accepted_value_ != kNoValue ? accepted_value_ : proposal_;
  }

  std::unique_ptr<Protocol> clone() const override {
    return std::make_unique<PaxosConsensus>(*this);
  }

  /// Acceptor-state introspection (used by the adversarial schedule in
  /// the recovery ablation, and by tests).
  Timestamp promised() const noexcept { return promised_; }
  Timestamp accepted_ballot() const noexcept { return accepted_ballot_; }
  /// Pre-seed the acceptor's promise, emulating a pre-GSR history in
  /// which competing proposers reached this acceptor. Only valid before
  /// the first round.
  void seed_promise(Timestamp ballot) noexcept { promised_ = ballot; }
  /// Number of ballots this proposer has started (the chase length).
  int ballots_started() const noexcept { return ballots_started_; }

 private:
  enum class Phase { kIdle, kAwaitPromises, kAwaitAccepts };

  SendSpec acceptor_or_idle(ProcessId leader_hint);
  SendSpec start_ballot(Round k);
  SendSpec send_to(Message m, ProcessId dst) const;
  SendSpec broadcast(Message m) const;

  const ProcessId self_;
  const int n_;
  const Value proposal_;

  // Acceptor state.
  Timestamp promised_ = 0;
  Timestamp accepted_ballot_ = 0;
  Value accepted_value_ = kNoValue;

  // Proposer state.
  Phase phase_ = Phase::kIdle;
  Timestamp cur_ballot_ = 0;
  Value cur_value_ = kNoValue;
  Round phase_msg_round_ = -1;  ///< round in which our phase message circulates
  Timestamp max_ballot_seen_ = 0;
  int ballots_started_ = 0;

  // Pending acceptor reply (computed while scanning the row).
  Message pending_reply_;
  ProcessId pending_reply_to_ = kNoProcess;

  Value dec_ = kNoValue;
};

}  // namespace timing

#include "consensus/wlm.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace timing {

WlmConsensus::WlmConsensus(ProcessId self, int n, Value proposal)
    : self_(self), n_(n), est_(proposal) {
  TM_CHECK(n > 1, "consensus needs n > 1");
  TM_CHECK(self >= 0 && self < n, "self out of range");
  TM_CHECK(proposal != kNoValue, "proposal must be a real value");
}

// Procedure Destinations(leader_i), lines 9-11: the leader sends to Pi,
// everyone else sends only to its trusted leader. This is what makes the
// stable-state message complexity linear.
std::vector<ProcessId> WlmConsensus::destinations(
    ProcessId leader_hint) const {
  if (leader_hint == self_ || leader_hint == kNoProcess) {
    return SendSpec::all(n_);
  }
  return {leader_hint};
}

SendSpec WlmConsensus::make_send(ProcessId leader_hint) const {
  Message m;
  m.type = msg_type_;
  m.est = est_;
  m.ts = ts_;
  m.leader = new_ld_;
  m.maj_approved = maj_approved_;
  return SendSpec{std::move(m), destinations(leader_hint)};
}

// Procedure initialize (lines 12-14).
SendSpec WlmConsensus::initialize(ProcessId leader_hint) {
  prev_ld_ = new_ld_ = leader_hint;
  return make_send(leader_hint);
}

// Procedure compute (lines 15-30).
SendSpec WlmConsensus::compute(Round k, const RoundMsgs& received,
                               ProcessId leader_hint) {
  TM_CHECK(static_cast<int>(received.size()) == n_, "row size mismatch");
  TM_CHECK(received[self_].has_value(), "own message must be present");
  if (dec_ == kNoValue) {  // line 16
    // Update variables (lines 18-21).
    prev_ld_ = new_ld_;
    new_ld_ = leader_hint;
    Timestamp max_ts = 0;
    bool any = false;
    for (const auto& m : received) {
      if (!m) continue;
      max_ts = any ? std::max(max_ts, m->ts) : m->ts;
      any = true;
    }
    Value max_est = kNoValue;
    for (const auto& m : received) {
      if (m && m->ts == max_ts) {
        max_est = max_est == kNoValue ? m->est : std::max(max_est, m->est);
      }
    }
    int votes_for_self = 0;
    for (const auto& m : received) {
      if (m && m->leader == self_) ++votes_for_self;
    }
    maj_approved_ = votes_for_self > n_ / 2;  // line 21

    // Round actions (lines 22-29).
    const Message* decide_msg = nullptr;
    for (const auto& m : received) {
      if (m && m->type == MsgType::kDecide) {
        decide_msg = &*m;
        break;
      }
    }
    int commit_count = 0;
    for (const auto& m : received) {
      if (m && m->type == MsgType::kCommit) ++commit_count;
    }
    const Message& own = *received[self_];

    if (decide_msg != nullptr) {
      // Rule decide-1 (lines 23-24).
      dec_ = est_ = decide_msg->est;
      msg_type_ = MsgType::kDecide;
      trace_decide(k, self_, dec_, decide_rule::kForwarded);
    } else if (commit_count > n_ / 2 && own.type == MsgType::kCommit &&
               own.maj_approved) {
      // Rules decide-2 and decide-3 (lines 25-26): a majority of COMMITs
      // including my own, and my own round-k message carried
      // majApproved = true.
      dec_ = est_;
      msg_type_ = MsgType::kDecide;
      trace_decide(k, self_, dec_, decide_rule::kCommitQuorum);
    } else if (prev_ld_ != kNoProcess && received[prev_ld_] &&
               received[prev_ld_]->maj_approved) {
      // Rule commit (lines 27-28): trust the leader indicated in my own
      // round-k message, provided a majority approved it in round k-1.
      est_ = received[prev_ld_]->est;
      ts_ = k;
      msg_type_ = MsgType::kCommit;
      last_commit_round_ = k;
    } else {
      // line 29: adopt the maximal timestamp/estimate seen this round.
      ts_ = max_ts;
      est_ = max_est;
      msg_type_ = MsgType::kPrepare;
    }
  }
  // line 30: return the next message and the destination set.
  return make_send(leader_hint);
}

}  // namespace timing

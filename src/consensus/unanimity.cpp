#include "consensus/unanimity.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace timing {

UnanimityConsensus::UnanimityConsensus(ProcessId self, int n, Value proposal)
    : self_(self), n_(n), est_(proposal) {
  TM_CHECK(n > 1, "consensus needs n > 1");
  TM_CHECK(self >= 0 && self < n, "self out of range");
  TM_CHECK(proposal != kNoValue, "proposal must be a real value");
}

SendSpec UnanimityConsensus::make_send() const {
  Message m;
  m.type = msg_type_;
  m.est = est_;
  m.ts = ts_;
  return SendSpec{std::move(m), SendSpec::all(n_)};
}

SendSpec UnanimityConsensus::initialize(ProcessId) { return make_send(); }

SendSpec UnanimityConsensus::compute(Round k, const RoundMsgs& received,
                                     ProcessId) {
  TM_CHECK(static_cast<int>(received.size()) == n_, "row size mismatch");
  TM_CHECK(received[self_].has_value(), "own message must be present");
  if (dec_ != kNoValue) return make_send();

  const Message& own = *received[self_];

  // decide-1.
  for (const auto& m : received) {
    if (m && m->type == MsgType::kDecide) {
      dec_ = est_ = m->est;
      msg_type_ = MsgType::kDecide;
      trace_decide(k, self_, dec_, decide_rule::kForwarded);
      return make_send();
    }
  }

  // decide-2: a majority of fresh commits on my own committed value.
  if (own.type == MsgType::kCommit && own.ts == k - 1) {
    int fresh_commits = 0;
    for (const auto& m : received) {
      if (m && m->type == MsgType::kCommit && m->ts == k - 1 &&
          m->est == own.est) {
        ++fresh_commits;
      }
    }
    if (fresh_commits > n_ / 2) {
      dec_ = est_ = own.est;
      msg_type_ = MsgType::kDecide;
      trace_decide(k, self_, dec_, decide_rule::kCommitQuorum);
      return make_send();
    }
  }

  // commit: unanimity over a majority.
  int heard = 0;
  bool unanimous = true;
  Value v = kNoValue;
  Timestamp max_ts = 0;
  bool first = true;
  for (const auto& m : received) {
    if (!m) continue;
    ++heard;
    if (first) {
      v = m->est;
      max_ts = m->ts;
      first = false;
    } else {
      if (m->est != v) unanimous = false;
      max_ts = std::max(max_ts, m->ts);
    }
  }
  if (heard > n_ / 2 && unanimous) {
    est_ = v;
    ts_ = k;
    msg_type_ = MsgType::kCommit;
    return make_send();
  }

  // prepare: adopt maxEST among maxTS carriers.
  Value max_est = kNoValue;
  for (const auto& m : received) {
    if (m && m->ts == max_ts) {
      max_est = max_est == kNoValue ? m->est : std::max(max_est, m->est);
    }
  }
  est_ = max_est;
  ts_ = max_ts;
  msg_type_ = MsgType::kPrepare;
  return make_send();
}

}  // namespace timing

// Convenience construction of the library's protocols.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "giraf/protocol.hpp"

namespace timing {

enum class AlgorithmKind {
  kWlm,        ///< Algorithm 2 (this paper)
  kEs3,        ///< ES stand-in, 3 rounds
  kLm3,        ///< <>LM stand-in, 3 rounds
  kAfm5,       ///< <>AFM stand-in, 5 rounds
  kLmOverWlm,  ///< Algorithm 3 simulation running the <>LM algorithm
  kPaxos,      ///< baseline
};

std::string to_string(AlgorithmKind k);

/// Stable lowercase key for configs and the scenario override grammar
/// ("wlm", "es3", "lm3", "afm5", "lm_over_wlm", "paxos").
std::string algorithm_key(AlgorithmKind k);

/// Inverse of algorithm_key; false when `key` names no algorithm.
bool parse_algorithm_kind(const std::string& key, AlgorithmKind& out);

/// All constructible kinds, in declaration order.
std::vector<AlgorithmKind> all_algorithm_kinds();

/// Build one protocol instance.
std::unique_ptr<Protocol> make_protocol(AlgorithmKind kind, ProcessId self,
                                        int n, Value proposal);

/// Build a full group of n instances with the given proposals
/// (proposals.size() == n).
std::vector<std::unique_ptr<Protocol>> make_group(
    AlgorithmKind kind, const std::vector<Value>& proposals);

}  // namespace timing

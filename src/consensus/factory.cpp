#include "consensus/factory.hpp"

#include "common/check.hpp"
#include "consensus/lm3.hpp"
#include "consensus/lm_over_wlm.hpp"
#include "consensus/paxos.hpp"
#include "consensus/unanimity.hpp"
#include "consensus/wlm.hpp"

namespace timing {

std::string to_string(AlgorithmKind k) {
  switch (k) {
    case AlgorithmKind::kWlm: return "Algorithm2(<>WLM)";
    case AlgorithmKind::kEs3: return "ES-3";
    case AlgorithmKind::kLm3: return "LM-3";
    case AlgorithmKind::kAfm5: return "AFM-5";
    case AlgorithmKind::kLmOverWlm: return "LM-over-WLM(Alg3)";
    case AlgorithmKind::kPaxos: return "Paxos";
  }
  return "?";
}

std::string algorithm_key(AlgorithmKind k) {
  switch (k) {
    case AlgorithmKind::kWlm: return "wlm";
    case AlgorithmKind::kEs3: return "es3";
    case AlgorithmKind::kLm3: return "lm3";
    case AlgorithmKind::kAfm5: return "afm5";
    case AlgorithmKind::kLmOverWlm: return "lm_over_wlm";
    case AlgorithmKind::kPaxos: return "paxos";
  }
  return "?";
}

std::vector<AlgorithmKind> all_algorithm_kinds() {
  return {AlgorithmKind::kWlm,       AlgorithmKind::kEs3,
          AlgorithmKind::kLm3,       AlgorithmKind::kAfm5,
          AlgorithmKind::kLmOverWlm, AlgorithmKind::kPaxos};
}

bool parse_algorithm_kind(const std::string& key, AlgorithmKind& out) {
  for (AlgorithmKind k : all_algorithm_kinds()) {
    if (key == algorithm_key(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

std::unique_ptr<Protocol> make_protocol(AlgorithmKind kind, ProcessId self,
                                        int n, Value proposal) {
  switch (kind) {
    case AlgorithmKind::kWlm:
      return std::make_unique<WlmConsensus>(self, n, proposal);
    case AlgorithmKind::kEs3:
    case AlgorithmKind::kAfm5:
      return std::make_unique<UnanimityConsensus>(self, n, proposal);
    case AlgorithmKind::kLm3:
      return std::make_unique<Lm3Consensus>(self, n, proposal);
    case AlgorithmKind::kLmOverWlm:
      return std::make_unique<LmOverWlmSimulation>(
          self, n, std::make_unique<Lm3Consensus>(self, n, proposal));
    case AlgorithmKind::kPaxos:
      return std::make_unique<PaxosConsensus>(self, n, proposal);
  }
  TM_CHECK(false, "unknown algorithm kind");
  return nullptr;
}

std::vector<std::unique_ptr<Protocol>> make_group(
    AlgorithmKind kind, const std::vector<Value>& proposals) {
  const int n = static_cast<int>(proposals.size());
  std::vector<std::unique_ptr<Protocol>> out;
  out.reserve(proposals.size());
  for (ProcessId i = 0; i < n; ++i) {
    out.push_back(make_protocol(kind, i, n, proposals[i]));
  }
  return out;
}

}  // namespace timing

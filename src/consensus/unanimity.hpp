// An indulgent, oracle-free consensus algorithm used as the library's
// stand-in for the optimal ES algorithm of [14] (3 rounds from GSR) and
// the simplified <>AFM algorithm of [19] (5 rounds from GSR) - the two
// papers' pseudocode is not reproduced in the DSN'07 paper, so we supply
// an algorithm with the same model assumptions and decision bounds
// (DESIGN.md section 4 documents this substitution).
//
// Every process broadcasts <type, est, ts> each round. At end of round k:
//   decide-1: a received DECIDE message decides its estimate.
//   decide-2: if > n/2 received messages are COMMIT(v, ts = k-1),
//             including my own, decide v.
//   commit:   if I received messages from > n/2 processes and ALL of them
//             carry the same estimate v, commit: est <- v, ts <- k.
//   prepare:  otherwise adopt maxEST/maxTS, as in Algorithm 2 line 29.
//
// Safety sketch (checked exhaustively by the property tests):
//  * Same-round commits agree: two committers' unanimous majorities
//    intersect in a process whose single round-k message fixes both
//    values.
//  * Let the first decision be on v at round kd, so a majority S
//    committed (v, kd-1). By induction every commit at a round >= kd-1 is
//    on v: a committer hears > n/2 processes, hence some member of S,
//    whose timestamp is >= kd-1 and whose estimate is v (timestamps are
//    non-decreasing and (est,ts) pairs propagate only via commits, as in
//    the paper's Lemmas 1-4); unanimity then forces the committed value
//    to v. decide-2 needs fresh (ts = k-1) majority commits, whose value
//    is therefore v.
//
// Liveness:
//  * ES: post-GSR all correct processes receive identical rows, so at end
//    of round GSR they adopt identical (maxEST, maxTS); round GSR+1 is
//    unanimous -> everyone commits; round GSR+2 everyone sees a majority
//    of fresh COMMITs -> global decision by GSR+2 (3 rounds).
//  * AFM: maxTS/maxEST information spreads through intersecting
//    majorities; the estimate stabilises within ~2 rounds of GSR and the
//    commit+decide tail adds 2 more, meeting [19]'s 5-round figure on the
//    schedules we generate (see DESIGN.md section 6 for the caveat).
#pragma once

#include "giraf/protocol.hpp"

namespace timing {

class UnanimityConsensus final : public Protocol {
 public:
  UnanimityConsensus(ProcessId self, int n, Value proposal);

  SendSpec initialize(ProcessId leader_hint) override;
  SendSpec compute(Round k, const RoundMsgs& received,
                   ProcessId leader_hint) override;

  bool has_decided() const noexcept override { return dec_ != kNoValue; }
  Value decision() const noexcept override { return dec_; }
  Timestamp current_ts() const noexcept override { return ts_; }
  Value current_est() const noexcept override { return est_; }

  std::unique_ptr<Protocol> clone() const override {
    return std::make_unique<UnanimityConsensus>(*this);
  }

 private:
  SendSpec make_send() const;

  const ProcessId self_;
  const int n_;
  Value est_;
  Timestamp ts_ = 0;
  MsgType msg_type_ = MsgType::kPrepare;
  Value dec_ = kNoValue;
};

/// Aliases documenting the roles this algorithm plays in the study.
using Es3Consensus = UnanimityConsensus;
using Afm5Consensus = UnanimityConsensus;

}  // namespace timing

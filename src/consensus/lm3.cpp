#include "consensus/lm3.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"

namespace timing {

Lm3Consensus::Lm3Consensus(ProcessId self, int n, Value proposal)
    : self_(self), n_(n), est_(proposal) {
  TM_CHECK(n > 1, "consensus needs n > 1");
  TM_CHECK(self >= 0 && self < n, "self out of range");
  TM_CHECK(proposal != kNoValue, "proposal must be a real value");
}

SendSpec Lm3Consensus::make_send() const {
  Message m;
  m.type = msg_type_;
  m.est = est_;
  m.ts = ts_;
  m.leader = new_ld_;
  m.heard_maj = heard_maj_;
  return SendSpec{std::move(m), SendSpec::all(n_)};
}

SendSpec Lm3Consensus::initialize(ProcessId leader_hint) {
  new_ld_ = leader_hint;
  return make_send();
}

SendSpec Lm3Consensus::compute(Round k, const RoundMsgs& received,
                               ProcessId leader_hint) {
  TM_CHECK(static_cast<int>(received.size()) == n_, "row size mismatch");
  TM_CHECK(received[self_].has_value(), "own message must be present");
  if (dec_ != kNoValue) {
    new_ld_ = leader_hint;
    return make_send();
  }

  const Message& own = *received[self_];

  int heard = 0;
  Timestamp max_ts = 0;
  bool first = true;
  std::vector<int> votes(static_cast<std::size_t>(n_), 0);
  for (const auto& m : received) {
    if (!m) continue;
    ++heard;
    if (first) {
      max_ts = m->ts;
      first = false;
    } else {
      max_ts = std::max(max_ts, m->ts);
    }
    if (m->leader >= 0 && m->leader < n_) ++votes[m->leader];
  }

  // These feed the *next* round's message.
  const bool heard_maj_now = heard > n_ / 2;
  new_ld_ = leader_hint;

  // decide-1.
  for (const auto& m : received) {
    if (m && m->type == MsgType::kDecide) {
      dec_ = est_ = m->est;
      msg_type_ = MsgType::kDecide;
      heard_maj_ = heard_maj_now;
      trace_decide(k, self_, dec_, decide_rule::kForwarded);
      return make_send();
    }
  }

  // decide-2: a majority of fresh commits on my own committed value.
  if (own.type == MsgType::kCommit && own.ts == k - 1) {
    int fresh = 0;
    for (const auto& m : received) {
      if (m && m->type == MsgType::kCommit && m->ts == k - 1 &&
          m->est == own.est) {
        ++fresh;
      }
    }
    if (fresh > n_ / 2) {
      dec_ = est_ = own.est;
      msg_type_ = MsgType::kDecide;
      heard_maj_ = heard_maj_now;
      trace_decide(k, self_, dec_, decide_rule::kCommitQuorum);
      return make_send();
    }
  }

  // commit: the unique majority-named leader's certified estimate.
  ProcessId named = kNoProcess;
  for (ProcessId q = 0; q < n_; ++q) {
    if (votes[q] > n_ / 2) {
      named = q;
      break;  // at most one process can have majority votes
    }
  }
  if (named != kNoProcess && received[named] &&
      received[named]->heard_maj) {
    est_ = received[named]->est;
    ts_ = k;
    msg_type_ = MsgType::kCommit;
    heard_maj_ = heard_maj_now;
    return make_send();
  }

  // prepare.
  Value max_est = kNoValue;
  for (const auto& m : received) {
    if (m && m->ts == max_ts) {
      max_est = max_est == kNoValue ? m->est : std::max(max_est, m->est);
    }
  }
  est_ = max_est;
  ts_ = max_ts;
  msg_type_ = MsgType::kPrepare;
  heard_maj_ = heard_maj_now;
  return make_send();
}

}  // namespace timing

#include "consensus/paxos.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace timing {

PaxosConsensus::PaxosConsensus(ProcessId self, int n, Value proposal)
    : self_(self), n_(n), proposal_(proposal) {
  TM_CHECK(n > 1, "consensus needs n > 1");
  TM_CHECK(self >= 0 && self < n, "self out of range");
  TM_CHECK(proposal != kNoValue, "proposal must be a real value");
}

SendSpec PaxosConsensus::send_to(Message m, ProcessId dst) const {
  return SendSpec{std::move(m), {dst}};
}

SendSpec PaxosConsensus::broadcast(Message m) const {
  return SendSpec{std::move(m), SendSpec::all(n_)};
}

SendSpec PaxosConsensus::initialize(ProcessId leader_hint) {
  // Round 1 carries no protocol content yet; the proposer starts its
  // first ballot at the end of round 1 (it cannot know about competing
  // ballots any earlier anyway).
  Message idle;
  idle.type = MsgType::kPaxosIdle;
  return send_to(std::move(idle),
                 leader_hint == kNoProcess ? self_ : leader_hint);
}

SendSpec PaxosConsensus::start_ballot(Round k) {
  // Smallest ballot above everything seen that is ours (b mod n = self).
  Timestamp b = std::max(max_ballot_seen_, promised_) + 1;
  b += (self_ - (b % n_) + n_) % n_;
  cur_ballot_ = b;
  cur_value_ = kNoValue;
  phase_ = Phase::kAwaitPromises;
  phase_msg_round_ = k + 1;
  ++ballots_started_;
  Message m;
  m.type = MsgType::kPaxosPrepare;
  m.ballot = b;
  return broadcast(std::move(m));
}

SendSpec PaxosConsensus::acceptor_or_idle(ProcessId leader_hint) {
  if (pending_reply_to_ != kNoProcess) {
    Message m = pending_reply_;
    ProcessId to = pending_reply_to_;
    pending_reply_to_ = kNoProcess;
    return send_to(std::move(m), to);
  }
  Message idle;
  idle.type = MsgType::kPaxosIdle;
  return send_to(std::move(idle),
                 leader_hint == kNoProcess ? self_ : leader_hint);
}

SendSpec PaxosConsensus::compute(Round k, const RoundMsgs& received,
                                 ProcessId leader_hint) {
  TM_CHECK(static_cast<int>(received.size()) == n_, "row size mismatch");
  pending_reply_to_ = kNoProcess;

  // ---- Learning: any DECIDE ends the protocol for us.
  for (const auto& m : received) {
    if (m && m->type == MsgType::kDecide) {
      if (dec_ == kNoValue) {
        trace_decide(k, self_, m->est, decide_rule::kPaxosLearn);
      }
      dec_ = m->est;
    }
  }
  if (dec_ != kNoValue) {
    Message m;
    m.type = MsgType::kDecide;
    m.est = dec_;
    return broadcast(std::move(m));
  }

  // ---- Acceptor: process the strongest ACCEPT and PREPARE of the round.
  const Message* best_prep = nullptr;
  ProcessId best_prep_from = kNoProcess;
  const Message* best_acc = nullptr;
  ProcessId best_acc_from = kNoProcess;
  for (ProcessId j = 0; j < n_; ++j) {
    const auto& m = received[j];
    if (!m) continue;
    max_ballot_seen_ =
        std::max({max_ballot_seen_, m->ballot, m->accepted_ballot});
    if (m->type == MsgType::kPaxosPrepare &&
        (best_prep == nullptr || m->ballot > best_prep->ballot)) {
      best_prep = &*m;
      best_prep_from = j;
    } else if (m->type == MsgType::kPaxosAccept &&
               (best_acc == nullptr || m->ballot > best_acc->ballot)) {
      best_acc = &*m;
      best_acc_from = j;
    }
  }
  if (best_acc != nullptr && best_acc->ballot >= promised_) {
    promised_ = best_acc->ballot;
    accepted_ballot_ = best_acc->ballot;
    accepted_value_ = best_acc->est;
    if (best_acc_from != self_) {
      pending_reply_ = Message{};
      pending_reply_.type = MsgType::kPaxosAccepted;
      pending_reply_.ballot = best_acc->ballot;
      pending_reply_to_ = best_acc_from;
    }
  }
  if (best_prep != nullptr) {
    if (best_prep->ballot > promised_) {
      promised_ = best_prep->ballot;
      if (best_prep_from != self_ && pending_reply_to_ == kNoProcess) {
        pending_reply_ = Message{};
        pending_reply_.type = MsgType::kPaxosPromise;
        pending_reply_.ballot = best_prep->ballot;
        pending_reply_.accepted_ballot = accepted_ballot_;
        pending_reply_.accepted_value = accepted_value_;
        pending_reply_to_ = best_prep_from;
      }
    } else if (best_prep_from != self_ && pending_reply_to_ == kNoProcess) {
      pending_reply_ = Message{};
      pending_reply_.type = MsgType::kPaxosNack;
      pending_reply_.ballot = promised_;  // tell the proposer what to beat
      pending_reply_to_ = best_prep_from;
    }
  }

  // ---- Proposer: only while trusted by our own oracle.
  if (leader_hint != self_) {
    phase_ = Phase::kIdle;  // abandon any ballot in flight
    return acceptor_or_idle(leader_hint);
  }

  switch (phase_) {
    case Phase::kIdle:
      return start_ballot(k);

    case Phase::kAwaitPromises: {
      if (k == phase_msg_round_) {
        // Our PREPARE circulated this round; replies come next round.
        return acceptor_or_idle(leader_hint);
      }
      // Tally round: count promises for cur_ballot_, including our own
      // acceptor state; any NACK at or above our ballot aborts. The value
      // is the one accepted under the highest ballot among the promisors
      // (classic Paxos phase-1b rule).
      int count = 0;
      Timestamp best_accepted = 0;
      Value best_value = kNoValue;
      if (promised_ == cur_ballot_) {
        count = 1;
        if (accepted_ballot_ > 0) {
          best_accepted = accepted_ballot_;
          best_value = accepted_value_;
        }
      }
      bool nacked = false;
      for (ProcessId j = 0; j < n_; ++j) {
        const auto& m = received[j];
        if (!m || j == self_) continue;
        if (m->type == MsgType::kPaxosPromise && m->ballot == cur_ballot_) {
          ++count;
          if (m->accepted_ballot > best_accepted &&
              m->accepted_value != kNoValue) {
            best_accepted = m->accepted_ballot;
            best_value = m->accepted_value;
          }
        } else if (m->type == MsgType::kPaxosNack &&
                   m->ballot >= cur_ballot_) {
          nacked = true;
        }
      }
      if (nacked || count < majority_size(n_)) {
        return start_ballot(k);  // the chase: retry with a higher ballot
      }
      cur_value_ = best_value != kNoValue ? best_value : proposal_;
      phase_ = Phase::kAwaitAccepts;
      phase_msg_round_ = k + 1;
      Message m;
      m.type = MsgType::kPaxosAccept;
      m.ballot = cur_ballot_;
      m.est = cur_value_;
      return broadcast(std::move(m));
    }

    case Phase::kAwaitAccepts: {
      if (k == phase_msg_round_) {
        return acceptor_or_idle(leader_hint);
      }
      int count = accepted_ballot_ == cur_ballot_ ? 1 : 0;
      bool nacked = false;
      for (ProcessId j = 0; j < n_; ++j) {
        const auto& m = received[j];
        if (!m || j == self_) continue;
        if (m->type == MsgType::kPaxosAccepted && m->ballot == cur_ballot_) {
          ++count;
        } else if (m->type == MsgType::kPaxosNack &&
                   m->ballot > cur_ballot_) {
          nacked = true;
        }
      }
      if (count >= majority_size(n_)) {
        dec_ = cur_value_;
        trace_decide(k, self_, dec_, decide_rule::kPaxosChosen);
        Message m;
        m.type = MsgType::kDecide;
        m.est = dec_;
        return broadcast(std::move(m));
      }
      // Preempted or the majority never formed: start over with a fresh
      // ballot (nacked only matters for the ballot bookkeeping already
      // folded into max_ballot_seen_).
      (void)nacked;
      return start_ballot(k);
    }
  }
  return acceptor_or_idle(leader_hint);  // unreachable
}

}  // namespace timing

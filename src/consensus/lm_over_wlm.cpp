#include "consensus/lm_over_wlm.hpp"

#include "common/check.hpp"

namespace timing {

LmOverWlmSimulation::LmOverWlmSimulation(ProcessId self, int n,
                                         std::unique_ptr<Protocol> inner)
    : self_(self), n_(n), inner_(std::move(inner)) {
  TM_CHECK(inner_ != nullptr, "inner protocol required");
}

// initialize_WLM (Algorithm 3 lines 2-3): the round-1 (odd) message is the
// inner algorithm's round-1 message, sent to Pi.
SendSpec LmOverWlmSimulation::initialize(ProcessId leader_hint) {
  SendSpec inner_spec = inner_->initialize(leader_hint);
  pending_inner_msg_ = inner_spec.msg;  // kept for our own row bookkeeping
  return SendSpec{inner_spec.msg, SendSpec::all(n_)};
}

// compute_WLM (Algorithm 3 lines 4-11).
SendSpec LmOverWlmSimulation::compute(Round k, const RoundMsgs& received,
                                      ProcessId leader_hint) {
  TM_CHECK(static_cast<int>(received.size()) == n_, "row size mismatch");
  if (k % 2 == 1) {
    // Odd round: forward everything received this round, tagged by
    // original sender (lines 5-6).
    Message relay;
    relay.type = MsgType::kRelay;
    for (ProcessId j = 0; j < n_; ++j) {
      if (received[j]) {
        relay.relay_from.push_back(j);
        relay.relay_msgs.push_back(*received[j]);
      }
    }
    return SendSpec{std::move(relay), SendSpec::all(n_)};
  }

  // Even round: reconstruct M_fixed[k/2][*] from the received relays
  // (lines 8-10) and run the inner compute with round number k/2
  // (line 11).
  RoundMsgs fixed(static_cast<std::size_t>(n_));
  for (ProcessId j = 0; j < n_; ++j) {
    for (const auto& rel : received) {
      if (!rel || rel->type != MsgType::kRelay) continue;
      bool found = false;
      for (std::size_t idx = 0; idx < rel->relay_from.size(); ++idx) {
        if (rel->relay_from[idx] == j) {
          fixed[j] = rel->relay_msgs[idx];
          found = true;
          break;
        }
      }
      if (found) break;
    }
  }
  // The inner protocol requires its own message to be present; our own
  // relay always contains it (we received our own round-(k-1) message),
  // but be explicit in case the relay round dropped everything.
  if (!fixed[self_]) fixed[self_] = pending_inner_msg_;

  inner_round_ = k / 2;
  const bool was_decided = inner_->has_decided();
  SendSpec inner_spec = inner_->compute(inner_round_, fixed, leader_hint);
  if (!was_decided && inner_->has_decided()) {
    // Re-emit the inner decide with the OUTER round number so the trace
    // stays consistent (see the header note).
    trace_decide(k, self_, inner_->decision(), decide_rule::kSimulated);
  }
  pending_inner_msg_ = inner_spec.msg;
  return SendSpec{inner_spec.msg, SendSpec::all(n_)};
}

}  // namespace timing

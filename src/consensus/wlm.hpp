// Algorithm 2 - the paper's time- and message-efficient consensus
// algorithm for the <>WLM model (Section 3).
//
// Key properties (proved in Appendix A of the paper and checked by our
// property tests):
//  * indulgent: safety (uniform agreement + validity) holds under fully
//    asynchronous behaviour, arbitrary message loss and arbitrary oracle
//    output;
//  * global decision by round GSR+4 (Theorem 10(a)), or GSR+3 when the
//    Omega requirements already hold from round GSR-1 (Theorem 10(b), the
//    stable-leader common case);
//  * linear stable-state message complexity: once all processes indicate
//    the same leader, non-leaders send only to the leader and the leader
//    sends to everyone (procedure Destinations, lines 9-11), i.e. 2(n-1)
//    messages per round.
//
// The implementation mirrors the paper's pseudocode line by line; comments
// cite the line numbers and rule names (decide-1/2/3, commit).
#pragma once

#include "giraf/protocol.hpp"

namespace timing {

class WlmConsensus final : public Protocol {
 public:
  /// `self` is p_i's identity, `n` the group size, `proposal` prop_i.
  WlmConsensus(ProcessId self, int n, Value proposal);

  SendSpec initialize(ProcessId leader_hint) override;
  SendSpec compute(Round k, const RoundMsgs& received,
                   ProcessId leader_hint) override;

  bool has_decided() const noexcept override { return dec_ != kNoValue; }
  Value decision() const noexcept override { return dec_; }
  Timestamp current_ts() const noexcept override { return ts_; }
  Value current_est() const noexcept override { return est_; }

  std::unique_ptr<Protocol> clone() const override {
    return std::make_unique<WlmConsensus>(*this);
  }

  /// Round in which this process committed last (for tests); -1 if never.
  Round last_commit_round() const noexcept { return last_commit_round_; }

 private:
  SendSpec make_send(ProcessId leader_hint) const;
  std::vector<ProcessId> destinations(ProcessId leader_hint) const;

  const ProcessId self_;
  const int n_;

  // State of Algorithm 2 (lines 1-6).
  Value est_;                     // est_i, initially prop_i
  Timestamp ts_ = 0;              // ts_i
  bool maj_approved_ = false;     // majApproved_i
  ProcessId prev_ld_ = kNoProcess;  // prevLD_i
  ProcessId new_ld_ = kNoProcess;   // newLD_i
  MsgType msg_type_ = MsgType::kPrepare;  // msgType_i
  Value dec_ = kNoValue;          // dec_i (write-once)
  Round last_commit_round_ = -1;
};

}  // namespace timing

// Algorithm 3 (Appendix B): simulating the <>LM model inside <>WLM, and
// running a <>LM consensus algorithm on top.
//
// Odd <>WLM rounds: every process forwards the full set of messages it
// received in the current round (as an array indexed by original sender)
// to everybody. Even rounds: reconstruct the inner round's messages from
// any relayer's copy and invoke the inner algorithm's compute() with the
// inner round number k/2. One inner (<>LM) round therefore costs two
// outer (<>WLM) rounds, and by Lemma 12 the simulation is alpha-reducible
// with alpha(l) = 2l + 2: the 3-round <>LM algorithm reaches global
// decision within 7 <>WLM rounds of GSR. This is the "simulated <>WLM"
// curve of Figure 1(a)/(b), the alternative the paper's direct Algorithm 2
// beats.
//
// The wrapper is generic in the inner protocol; the library instantiates
// it with Lm3Consensus.
#pragma once

#include <memory>

#include "giraf/protocol.hpp"

namespace timing {

class LmOverWlmSimulation final : public Protocol {
 public:
  /// Takes ownership of the inner <>LM protocol instance.
  LmOverWlmSimulation(ProcessId self, int n, std::unique_ptr<Protocol> inner);

  SendSpec initialize(ProcessId leader_hint) override;
  SendSpec compute(Round k, const RoundMsgs& received,
                   ProcessId leader_hint) override;

  bool has_decided() const noexcept override { return inner_->has_decided(); }
  Value decision() const noexcept override { return inner_->decision(); }
  Timestamp current_ts() const noexcept override { return inner_->current_ts(); }
  Value current_est() const noexcept override { return inner_->current_est(); }

  /// Inner rounds completed so far (test introspection).
  Round inner_rounds() const noexcept { return inner_round_; }

  // NOTE: the sink is deliberately NOT forwarded to the inner protocol.
  // The inner algorithm runs with simulated round numbers (k/2), so its
  // decide events would carry rounds inconsistent with the outer trace;
  // the wrapper re-emits decides itself with the outer round (see
  // compute()).

  std::unique_ptr<Protocol> clone() const override {
    auto inner_copy = inner_->clone();
    if (!inner_copy) return nullptr;
    auto copy = std::make_unique<LmOverWlmSimulation>(self_, n_,
                                                      std::move(inner_copy));
    copy->pending_inner_msg_ = pending_inner_msg_;
    copy->inner_round_ = inner_round_;
    return copy;
  }

 private:
  const ProcessId self_;
  const int n_;
  std::unique_ptr<Protocol> inner_;
  Message pending_inner_msg_;  ///< inner round message awaiting an odd round
  Round inner_round_ = 0;
};

}  // namespace timing

// The round-synchronization protocol of Section 5.1, which lets GIRAF run
// over a real network without synchronized clocks.
//
// Per the paper, each node runs two threads:
//  * a RECEIVER thread that records every incoming message into a buffer
//    indexed by the round stamped on it, and notifies the driver whenever
//    a message of a FUTURE round k_j > k_i arrives;
//  * a DRIVER thread that starts each round by sending the protocol's
//    messages, waits out the round's duration (the `timeout` parameter),
//    and then calls compute(). On a future-round notification the current
//    round ends immediately, compute() runs, and the node jumps straight
//    to round k_j, whose duration is set to timeout - L_i[j] (the
//    estimated remaining time of that round at the peers, using the
//    ping-measured one-way latency L_i[j]).
//
// "This algorithm allows a slow node to join its peers already in round
// k_j ... We found that this algorithm achieves very fast synchronization,
// and whenever the synchronization is lost, it is immediately regained."
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "giraf/oracle.hpp"
#include "roundsync/adaptive_timeout.hpp"
#include "giraf/protocol.hpp"
#include "net/transport.hpp"
#include "obs/span.hpp"

namespace timing {

struct RoundSyncConfig {
  double timeout_ms = 50.0;  ///< round duration (the experiments' knob)
  int max_rounds = 1000;     ///< hard stop (counted in compute() calls)
  /// First round number used on the wire. Successive consensus instances
  /// sharing one transport should use disjoint, increasing ranges so that
  /// a lingering DECIDE of instance k can never be mistaken for a
  /// message of instance k+1 (stale rounds are dropped by the receiver).
  Round first_round = 1;
  /// L_i[j]: one-way latency estimates (ms), e.g. from measure_peer_rtts.
  /// Empty means all zero.
  std::vector<double> one_way_ms;
  /// After deciding locally, keep participating for this many more rounds
  /// so peers can observe our DECIDE messages.
  int linger_rounds_after_decide = 6;
  /// Lower bound on any round duration, as a fraction of timeout.
  double min_duration_fraction = 0.1;
  /// Optional online timeout controller (not owned; one per node). When
  /// set, the runner records every in-round message's arrival offset and
  /// re-reads the timeout at each round boundary - the Section 5.3
  /// tuning methodology running live.
  AdaptiveTimeout* adaptive = nullptr;
  /// Optional span tracer (not owned; one per node, driver thread only).
  /// When set, each round becomes a `round` span under `parent_span`,
  /// each outgoing envelope a `msg` child span whose id rides the wire
  /// (Envelope::span), and each arriving envelope a causality edge from
  /// its message span to the round that consumed it.
  SpanTracer* spans = nullptr;
  std::uint64_t parent_span = 0;  ///< e.g. the enclosing instance span
};

struct RoundSyncResult {
  bool decided = false;
  Value decision = kNoValue;
  Round decision_round = -1;
  Round rounds_executed = 0;   ///< number of compute() calls
  Round final_round = 0;       ///< last round number reached (with jumps)
  long long messages_sent = 0;
  long long fast_forwards = 0; ///< future-round jumps taken
  double elapsed_ms = 0.0;
};

class RoundSyncRunner {
 public:
  /// `oracle` may be null (leaderless protocols). The protocol must not
  /// be shared with other runners.
  RoundSyncRunner(Protocol& protocol, Oracle* oracle, Transport& transport,
                  int n, RoundSyncConfig cfg);

  /// Blocks until decision + linger, or max_rounds. Spawns and joins the
  /// receiver thread internally.
  RoundSyncResult run();

 private:
  struct Buffered {
    RoundMsgs row;
    int count = 0;
    /// Wire span ids of the envelopes buffered for this round; drained
    /// by the driver (with the row) and emitted as cause edges there,
    /// keeping all span emission on the driver thread.
    std::vector<std::uint64_t> causes;
  };

  void receiver_loop();
  RoundMsgs take_row(Round k, std::vector<std::uint64_t>* causes);

  Protocol& protocol_;
  Oracle* oracle_;
  Transport& transport_;
  const int n_;
  RoundSyncConfig cfg_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<Round, Buffered> buffer_;
  Round current_round_ = 0;       ///< what the driver is executing
  Clock::time_point round_start_{};  ///< when the current round began
  Round future_round_ = 0;        ///< highest round seen from a peer
  ProcessId future_sender_ = kNoProcess;
  std::atomic<bool> stop_{false};
};

}  // namespace timing

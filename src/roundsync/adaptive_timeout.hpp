// Online timeout tuning - the Section 5.3 methodology as a controller.
//
// The paper ends with: "a system administrator can perform measurements
// and choose the timeout for a specific system, according to such
// criteria", and shows that the optimum sits where a target fraction of
// messages arrives on time (p ~ 0.90 for <>WLM, ~0.96 for <>LM at their
// testbed). This controller automates the loop: each node records the
// arrival offsets of incoming round messages (milliseconds since its
// round started) and periodically resets its round timeout to the
// target-p quantile of the observed offsets, plus a safety margin.
//
// The controller is deliberately conservative: it moves at most
// `max_step_factor` per adjustment so transient bursts cannot whipsaw the
// round length, and it never leaves [min_ms, max_ms].
#pragma once

#include <vector>

#include "common/types.hpp"

namespace timing {

struct AdaptiveTimeoutConfig {
  double initial_ms = 50.0;
  double target_p = 0.90;      ///< fraction of messages that should be timely
  double margin_factor = 1.15; ///< headroom above the measured quantile
  double min_ms = 0.05;
  double max_ms = 10000.0;
  int window_samples = 64;     ///< adjust after this many observations
  double max_step_factor = 1.5;  ///< bound per-adjustment change (up or down)
};

class AdaptiveTimeout {
 public:
  explicit AdaptiveTimeout(AdaptiveTimeoutConfig cfg);

  /// Record one message's arrival offset within its round (ms). The
  /// window is a ring buffer of capacity 4 x window_samples: once full,
  /// new samples overwrite the oldest instead of being dropped, so a
  /// burst arriving long after the cap still shifts the next quantile.
  void record_offset_ms(double offset_ms);

  /// Current round timeout.
  double timeout_ms() const noexcept { return current_ms_; }

  /// Called at round boundaries: applies an adjustment when a full window
  /// of samples is available and returns the timeout to use next.
  double next_timeout_ms();

  int adjustments() const noexcept { return adjustments_; }

 private:
  AdaptiveTimeoutConfig cfg_;
  std::vector<double> window_;  ///< ring once size reaches capacity
  std::size_t oldest_ = 0;      ///< overwrite position when full
  double current_ms_;
  int adjustments_ = 0;
};

}  // namespace timing

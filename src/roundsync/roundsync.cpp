#include "roundsync/roundsync.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "net/frame.hpp"

namespace timing {

RoundSyncRunner::RoundSyncRunner(Protocol& protocol, Oracle* oracle,
                                 Transport& transport, int n,
                                 RoundSyncConfig cfg)
    : protocol_(protocol), oracle_(oracle), transport_(transport), n_(n),
      cfg_(std::move(cfg)) {
  TM_CHECK(n > 1, "round sync needs n > 1");
  if (cfg_.one_way_ms.empty()) {
    cfg_.one_way_ms.assign(static_cast<std::size_t>(n), 0.0);
  }
  TM_CHECK(static_cast<int>(cfg_.one_way_ms.size()) == n,
           "one_way_ms must have n entries");
}

void RoundSyncRunner::receiver_loop() {
  Bytes buf;
  while (!stop_.load(std::memory_order_relaxed)) {
    ProcessId from = kNoProcess;
    const auto slice = Clock::now() + std::chrono::milliseconds(20);
    if (!transport_.recv(buf, from, slice)) continue;
    auto frame = parse_frame(buf);
    if (!frame) continue;
    if (const auto* ping = std::get_if<PingFrame>(&*frame)) {
      // Keep answering stragglers still in their measurement phase.
      Bytes out;
      frame_pong(PongFrame{ping->nonce}, out);
      transport_.send(from, out);
      continue;
    }
    const auto* env = std::get_if<Envelope>(&*frame);
    if (!env) continue;
    if (env->sender != from || env->sender < 0 || env->sender >= n_) continue;
    std::lock_guard lk(mu_);
    if (env->round < current_round_) continue;  // stale round; drop
    if (cfg_.adaptive) {
      // Arrival offset within the local round. Messages for FUTURE rounds
      // arrived before we even started that round - maximally timely -
      // and count as offset 0 (in steady state, senders slightly ahead of
      // us deliver most messages this way, and missing them would starve
      // the controller of samples).
      const double offset =
          env->round == current_round_
              ? std::chrono::duration<double, std::milli>(Clock::now() -
                                                          round_start_)
                    .count()
              : 0.0;
      cfg_.adaptive->record_offset_ms(offset);
    }
    auto& slot = buffer_[env->round];
    if (slot.row.empty()) slot.row.assign(static_cast<std::size_t>(n_), std::nullopt);
    if (!slot.row[static_cast<std::size_t>(env->sender)]) {
      slot.row[static_cast<std::size_t>(env->sender)] = env->msg;
      ++slot.count;
      // Remember the sender's message-span id; the driver turns it into
      // a round <- msg causality edge when it consumes the row.
      if (env->span != 0) slot.causes.push_back(env->span);
    }
    if (env->round > current_round_ && env->round > future_round_) {
      future_round_ = env->round;
      future_sender_ = env->sender;
      cv_.notify_all();
    }
  }
}

RoundMsgs RoundSyncRunner::take_row(Round k,
                                    std::vector<std::uint64_t>* causes) {
  RoundMsgs row;
  auto it = buffer_.find(k);
  if (it != buffer_.end()) {
    row = std::move(it->second.row);
    if (causes != nullptr) *causes = std::move(it->second.causes);
  } else {
    row.assign(static_cast<std::size_t>(n_), std::nullopt);
  }
  // Garbage-collect past rounds.
  buffer_.erase(buffer_.begin(), buffer_.upper_bound(k));
  return row;
}

RoundSyncResult RoundSyncRunner::run() {
  RoundSyncResult result;
  const ProcessId self = transport_.self();
  const auto t0 = Clock::now();
  SpanTracer* spans = cfg_.spans;
  const bool sp_on = spans != nullptr && spans->enabled();

  std::thread receiver([this] { receiver_loop(); });

  const auto hint = [&](Round k) {
    return oracle_ ? oracle_->query(self, k) : kNoProcess;
  };
  SendSpec out = protocol_.initialize(hint(cfg_.first_round - 1));

  Round k = cfg_.first_round;
  {
    std::lock_guard lk(mu_);
    current_round_ = k;
  }
  auto base_timeout = [&] {
    return cfg_.adaptive ? cfg_.adaptive->timeout_ms() : cfg_.timeout_ms;
  };
  double duration_ms = base_timeout();
  int rounds_after_decide = 0;

  while (result.rounds_executed < cfg_.max_rounds) {
    const double min_ms = base_timeout() * cfg_.min_duration_fraction;
    {
      std::lock_guard lk(mu_);
      current_round_ = k;
      round_start_ = Clock::now();
      if (future_round_ <= k) {
        future_round_ = 0;
        future_sender_ = kNoProcess;
      }
    }
    // Start of round k: send the pending message, record our own copy.
    const std::uint64_t rs_id =
        sp_on ? make_span_id(span_kind::kRound,
                             static_cast<std::uint64_t>(k),
                             static_cast<std::uint64_t>(self))
              : 0;
    if (sp_on) spans->begin(rs_id, cfg_.parent_span, span_kind::kRound, k);
    Bytes wire;
    if (!sp_on) frame_envelope(Envelope{k, self, out.msg}, wire);
    for (ProcessId d : out.dests) {
      if (d == self) continue;
      if (sp_on) {
        // Each destination gets its own message span whose id rides the
        // wire, so the receiver can attribute the arrival to this exact
        // send. Re-encoding per destination only happens with spans on.
        Envelope env{k, self, out.msg};
        env.span = make_span_id(span_kind::kMsg,
                                static_cast<std::uint64_t>(k),
                                static_cast<std::uint64_t>(self),
                                static_cast<std::uint64_t>(d));
        wire.clear();
        frame_envelope(env, wire);
        spans->begin(env.span, rs_id, span_kind::kMsg, k);
        transport_.send(d, wire);
        spans->end(env.span, span_kind::kMsg, k);
      } else {
        transport_.send(d, wire);
      }
      ++result.messages_sent;
    }
    {
      std::lock_guard lk(mu_);
      auto& slot = buffer_[k];
      if (slot.row.empty()) slot.row.assign(static_cast<std::size_t>(n_), std::nullopt);
      slot.row[static_cast<std::size_t>(self)] = out.msg;
    }

    // Wait out the round, or end it early on a future-round message.
    const auto deadline =
        Clock::now() + std::chrono::microseconds(static_cast<long long>(
                           std::max(duration_ms, min_ms) * 1000.0));
    Round jump_to = 0;
    ProcessId jump_from = kNoProcess;
    {
      std::unique_lock lk(mu_);
      cv_.wait_until(lk, deadline, [&] { return future_round_ > k; });
      if (future_round_ > k) {
        jump_to = future_round_;
        jump_from = future_sender_;
      }
    }

    // End of round k: compute.
    RoundMsgs row;
    std::vector<std::uint64_t> causes;
    {
      std::lock_guard lk(mu_);
      row = take_row(k, sp_on ? &causes : nullptr);
    }
    if (sp_on && !causes.empty()) {
      // Cause edges from the peer message spans this round consumed.
      // Sorted so trace bytes don't depend on arrival interleaving.
      std::sort(causes.begin(), causes.end());
      for (const std::uint64_t c : causes) {
        spans->cause(rs_id, c, span_kind::kRound, k);
      }
    }
    if (!row[static_cast<std::size_t>(self)]) {
      row[static_cast<std::size_t>(self)] = out.msg;
    }
    const bool was_decided = protocol_.has_decided();
    out = protocol_.compute(k, row, hint(k));
    if (sp_on) spans->end(rs_id, span_kind::kRound, k);
    ++result.rounds_executed;
    if (!was_decided && protocol_.has_decided()) {
      result.decided = true;
      result.decision = protocol_.decision();
      result.decision_round = k;
    }
    if (protocol_.has_decided() &&
        ++rounds_after_decide > cfg_.linger_rounds_after_decide) {
      result.final_round = k;
      break;
    }

    // Advance: jump to the future round (with the shortened duration from
    // the paper) or step to k+1. The adaptive controller, when present,
    // re-evaluates the base timeout at each boundary.
    const double next_base =
        cfg_.adaptive ? cfg_.adaptive->next_timeout_ms() : cfg_.timeout_ms;
    if (jump_to > k) {
      ++result.fast_forwards;
      duration_ms =
          next_base - cfg_.one_way_ms[static_cast<std::size_t>(jump_from)];
      k = jump_to;
    } else {
      duration_ms = next_base;
      k = k + 1;
    }
    result.final_round = k;
  }

  stop_.store(true, std::memory_order_relaxed);
  receiver.join();
  result.elapsed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return result;
}

}  // namespace timing

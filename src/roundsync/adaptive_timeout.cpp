#include "roundsync/adaptive_timeout.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace timing {

AdaptiveTimeout::AdaptiveTimeout(AdaptiveTimeoutConfig cfg)
    : cfg_(cfg), current_ms_(cfg.initial_ms) {
  TM_CHECK(cfg_.initial_ms > 0.0, "initial timeout must be positive");
  TM_CHECK(cfg_.target_p > 0.0 && cfg_.target_p < 1.0,
           "target_p must be in (0, 1)");
  TM_CHECK(cfg_.min_ms > 0.0 && cfg_.min_ms <= cfg_.max_ms,
           "bad timeout bounds");
  TM_CHECK(cfg_.window_samples >= 8, "window too small to estimate quantiles");
  TM_CHECK(cfg_.max_step_factor > 1.0, "step factor must exceed 1");
  window_.reserve(static_cast<std::size_t>(4 * cfg_.window_samples));
}

void AdaptiveTimeout::record_offset_ms(double offset_ms) {
  if (offset_ms < 0.0) offset_ms = 0.0;
  const auto cap = static_cast<std::size_t>(4 * cfg_.window_samples);
  if (window_.size() < cap) {
    window_.push_back(offset_ms);
    return;
  }
  // Ring: overwrite the oldest sample, so late bursts past the capacity
  // still land in the window instead of being silently dropped.
  window_[oldest_] = offset_ms;
  oldest_ = (oldest_ + 1) % cap;
}

double AdaptiveTimeout::next_timeout_ms() {
  if (static_cast<int>(window_.size()) < cfg_.window_samples) {
    return current_ms_;
  }
  // In-place quantile: the window is cleared right after, so sorting it
  // is free of both copies and allocations.
  const double q = quantile_of(std::span<double>(window_), cfg_.target_p);
  window_.clear();
  oldest_ = 0;
  double proposed = q * cfg_.margin_factor;
  // Never move more than max_step_factor per adjustment.
  proposed = std::min(proposed, current_ms_ * cfg_.max_step_factor);
  proposed = std::max(proposed, current_ms_ / cfg_.max_step_factor);
  proposed = std::clamp(proposed, cfg_.min_ms, cfg_.max_ms);
  if (proposed != current_ms_) ++adjustments_;
  current_ms_ = proposed;
  return current_ms_;
}

}  // namespace timing

#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/parse.hpp"

namespace timing {

namespace {

std::atomic<int> g_override{0};
/// True while this thread executes inside a parallel_for — as a pool
/// worker or as the submitting caller. Nested parallel_for calls then
/// run inline: re-entering the pool from its own job would deadlock on
/// the submission lock (and oversubscribe anyway).
thread_local bool tl_in_parallel = false;

struct InParallelGuard {
  InParallelGuard() noexcept { tl_in_parallel = true; }
  ~InParallelGuard() { tl_in_parallel = false; }
};

struct Job {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::atomic<int> helper_slots{0};  ///< workers still allowed to join
  int in_flight = 0;                 ///< participants inside work() (guarded)
  std::exception_ptr error;          ///< first failure (guarded)
};

/// Lazily grown pool of detachedly-waiting workers. One job runs at a
/// time; parallel_for serializes submitters. Workers claim indices from
/// the shared counter, so load-balancing is automatic and the mapping of
/// trials to threads is irrelevant to the results.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(std::size_t n, int threads,
           const std::function<void(std::size_t)>& body) {
    std::unique_lock<std::mutex> submit(submit_mutex_);
    Job job;
    job.body = &body;
    job.n = n;
    const int helpers =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(threads - 1), n - 1));
    job.helper_slots.store(helpers, std::memory_order_relaxed);
    ensure_workers(helpers);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      ++epoch_;
      job.in_flight = 1;  // the caller
    }
    cv_.notify_all();
    {
      InParallelGuard guard;
      work(job);
    }
    std::unique_lock<std::mutex> lock(mutex_);
    --job.in_flight;
    done_cv_.wait(lock, [&] { return job.in_flight == 0; });
    job_ = nullptr;
    const std::exception_ptr err = job.error;
    lock.unlock();
    if (err) std::rethrow_exception(err);
  }

 private:
  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  void ensure_workers(int wanted) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (static_cast<int>(workers_.size()) < wanted) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    tl_in_parallel = true;
    std::uint64_t seen = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] {
          return shutdown_ || (job_ != nullptr && epoch_ != seen);
        });
        if (shutdown_) return;
        seen = epoch_;
        if (job_->helper_slots.fetch_sub(1, std::memory_order_relaxed) <= 0) {
          continue;  // enough hands on this job already
        }
        job = job_;
        ++job->in_flight;
      }
      work(*job);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --job->in_flight;
      }
      done_cv_.notify_all();
    }
  }

  static void work(Job& job) {
    for (;;) {
      if (job.cancelled.load(std::memory_order_relaxed)) return;
      const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.n) return;
      try {
        (*job.body)(i);
      } catch (...) {
        job.cancelled.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(instance().mutex_);
        if (!job.error) job.error = std::current_exception();
      }
    }
  }

  std::mutex submit_mutex_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  bool shutdown_ = false;
};

}  // namespace

int hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int configured_threads() noexcept {
  // The cached static doubles as warn-once: invalid or clamped values are
  // reported the first time any pool work is scheduled, then reused.
  static const int cached = [] {
    if (const char* env = std::getenv("TIMING_THREADS")) {
      long v = 0;
      if (!parse_long(env, v) || v < 1) {
        std::fprintf(stderr,
                     "warning: ignoring invalid TIMING_THREADS=%s "
                     "(expected an integer >= 1); using %d hardware "
                     "thread(s)\n",
                     env, hardware_threads());
        return hardware_threads();
      }
      if (v > 256) {
        std::fprintf(stderr, "warning: TIMING_THREADS=%ld clamped to 256\n",
                     v);
        v = 256;
      }
      return static_cast<int>(v);
    }
    return hardware_threads();
  }();
  return cached;
}

int effective_threads() noexcept {
  const int o = g_override.load(std::memory_order_relaxed);
  return o > 0 ? o : configured_threads();
}

ScopedThreads::ScopedThreads(int threads) noexcept
    : prev_(g_override.exchange(threads > 0 ? threads : 0)) {}

ScopedThreads::~ScopedThreads() { g_override.store(prev_); }

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const int threads = effective_threads();
  if (threads <= 1 || n == 1 || tl_in_parallel) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  Pool::instance().run(n, threads, body);
}

}  // namespace timing

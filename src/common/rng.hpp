// Deterministic, fast pseudo-random generation.
//
// All stochastic components (latency models, adversarial schedules,
// Monte-Carlo validation) draw from this generator so that every
// experiment is reproducible from a single 64-bit seed.
#pragma once

#include <cstdint>

namespace timing {

/// splitmix64 — used to expand a user seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator,
/// so it can also be plugged into <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform_int(std::uint64_t bound) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller (caches the spare deviate).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with given mean (mean = 1/lambda).
  double exponential(double mean) noexcept;

  /// Pareto with scale x_m and shape alpha (heavy tail for WAN spikes).
  double pareto(double x_m, double alpha) noexcept;

  /// Derive an independent stream (e.g. one per link or per run).
  /// Stateful: advances this generator, so the result depends on how many
  /// splits happened before. For parallel trials prefer substream().
  Rng split() noexcept;

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// Counter-based sub-stream seed for trial `index` of a root seed: a pure
/// function of (root, index), so trial k draws the same values no matter
/// which thread runs it, in what order sub-streams are created, or how
/// many trials exist. This is the seed derivation the experiment harness
/// has always used per run; exposed here so every parallel consumer
/// shares it.
std::uint64_t substream_seed(std::uint64_t root, std::uint64_t index) noexcept;

/// The generator for trial `index` of root seed `root`.
Rng substream(std::uint64_t root, std::uint64_t index) noexcept;

}  // namespace timing

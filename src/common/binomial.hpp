// Exact binomial machinery for the closed-form analysis of Section 4.
//
// The analysis raises small probabilities to large powers (e.g. P_ES =
// p^{n^2} cubed), so everything is computed in log space and only
// exponentiated at the end.
#pragma once

#include <cstdint>

namespace timing {

/// ln C(n, k). Requires 0 <= k <= n.
double log_choose(int n, int k) noexcept;

/// Binomial pmf: P[Bin(n, p) = k].
double binomial_pmf(int n, int k, double p) noexcept;

/// Upper tail: P[Bin(n, p) >= k]. Exact summation in a numerically careful
/// order (largest terms first).
double binomial_tail_ge(int n, int k, double p) noexcept;

/// ln of binomial_tail_ge (log-sum-exp), usable when the tail underflows.
double log_binomial_tail_ge(int n, int k, double p) noexcept;

/// Chernoff lower bound on P[Bin(n, p) > n/2] used in Appendix C
/// (Lemma 13): 1 - exp(-(1 - 1/(2p))^2 * n * p / 2), valid for p > 1/2.
double chernoff_majority_lower_bound(int n, double p) noexcept;

}  // namespace timing

#include "common/rng.hpp"

#include <cmath>

namespace timing {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t bound) noexcept {
  // Lemire-style rejection-free multiply-shift; bias is negligible for the
  // bounds used here (n <= a few thousand), but we debias anyway.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0ULL - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -mean * std::log(u);
}

double Rng::pareto(double x_m, double alpha) noexcept {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return x_m / std::pow(u, 1.0 / alpha);
}

Rng Rng::split() noexcept { return Rng(next() ^ 0xa0761d6478bd642fULL); }

std::uint64_t substream_seed(std::uint64_t root, std::uint64_t index) noexcept {
  std::uint64_t s = root ^ (0x51ed2701a2b9d4e3ULL * (index + 1));
  return splitmix64(s);
}

Rng substream(std::uint64_t root, std::uint64_t index) noexcept {
  return Rng(substream_seed(root, index));
}

}  // namespace timing

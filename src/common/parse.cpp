#include "common/parse.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace timing {

bool parse_long(const std::string& s, long& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = v;
  return true;
}

bool parse_int(const std::string& s, int& out) {
  long v = 0;
  if (!parse_long(s, v)) return false;
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    return false;
  }
  out = static_cast<int>(v);
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  if (!std::isfinite(v)) return false;
  out = v;
  return true;
}

namespace {

template <typename T, bool (*ParseOne)(const std::string&, T&)>
bool parse_list(const std::string& s, std::vector<T>& out) {
  std::vector<T> vals;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = s.find(',', start);
    const std::string item = s.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    T v{};
    if (!ParseOne(item, v)) return false;
    vals.push_back(v);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (vals.empty()) return false;
  out = std::move(vals);
  return true;
}

}  // namespace

bool parse_int_list(const std::string& s, std::vector<int>& out) {
  return parse_list<int, parse_int>(s, out);
}

bool parse_double_list(const std::string& s, std::vector<double>& out) {
  return parse_list<double, parse_double>(s, out);
}

}  // namespace timing

#include "common/binomial.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace timing {

double log_choose(int n, int k) noexcept {
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

namespace {

double log_pmf(int n, int k, double p) noexcept {
  if (p <= 0.0) return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return k == n ? 0.0 : -std::numeric_limits<double>::infinity();
  return log_choose(n, k) + k * std::log(p) + (n - k) * std::log1p(-p);
}

}  // namespace

double binomial_pmf(int n, int k, double p) noexcept {
  if (k < 0 || k > n) return 0.0;
  return std::exp(log_pmf(n, k, p));
}

double binomial_tail_ge(int n, int k, double p) noexcept {
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  // Ascending summation so the small tail terms are not lost, without
  // materialising and sorting the terms: the pmf is unimodal with its
  // peak at m = floor((n+1)p), so over [k, n] the terms form an
  // ascending run k..m and a descending run m+1..n. Two-pointer-merging
  // the runs (lo walks up to m, hi walks down to m+1) visits the terms
  // in exactly the globally ascending order a sort would produce.
  int m = static_cast<int>(std::floor((static_cast<double>(n) + 1.0) * p));
  if (m < k) m = k;
  if (m > n) m = n;
  int lo = k;
  int hi = n;
  double sum = 0.0;
  while (lo <= m && hi > m) {
    const double a = binomial_pmf(n, lo, p);
    const double b = binomial_pmf(n, hi, p);
    if (a <= b) {
      sum += a;
      ++lo;
    } else {
      sum += b;
      --hi;
    }
  }
  while (lo <= m) sum += binomial_pmf(n, lo++, p);
  while (hi > m) sum += binomial_pmf(n, hi--, p);
  return std::min(1.0, sum);
}

double log_binomial_tail_ge(int n, int k, double p) noexcept {
  if (k <= 0) return 0.0;
  if (k > n) return -std::numeric_limits<double>::infinity();
  double max_log = -std::numeric_limits<double>::infinity();
  for (int i = k; i <= n; ++i) max_log = std::max(max_log, log_pmf(n, i, p));
  if (!std::isfinite(max_log)) return max_log;
  double acc = 0.0;
  for (int i = k; i <= n; ++i) acc += std::exp(log_pmf(n, i, p) - max_log);
  return max_log + std::log(acc);
}

double chernoff_majority_lower_bound(int n, double p) noexcept {
  if (p <= 0.5) return 0.0;
  const double eps = 1.0 - 1.0 / (2.0 * p);
  const double bound = std::exp(-eps * eps * n * p / 2.0);
  return std::max(0.0, 1.0 - bound);
}

}  // namespace timing

// Lightweight invariant checking. TM_CHECK aborts with a message on
// violation in all build types; protocol invariants are cheap relative to
// simulation cost, so we keep them always on.
#pragma once

#include <cstdio>
#include <cstdlib>

#define TM_CHECK(cond, msg)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "TM_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, msg);                                       \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

// Statistics used by the measurement harness (Section 5 of the paper):
// means, sample variance, 95% confidence intervals (Figure 1(e)) and the
// variance series of Figure 1(f).
//
// The accumulators are MERGEABLE so that parallel trial shards can each
// fold locally and be combined afterwards: RunningStats::merge is Chan's
// pairwise update (associative and commutative up to floating-point
// rounding; exact for the count/min/max parts), and Histogram bins are
// integer counts, so histogram merging is exactly associative.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace timing {

/// Welford online accumulator: numerically stable mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Fold another accumulator into this one (Chan et al.). Merging
  /// single-observation accumulators in order is bit-identical to
  /// calling add() in that order; general merges agree with the
  /// single-pass result up to ulp-scale rounding.
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean.
  double stderr_mean() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Half-width of the two-sided 95% confidence interval for the mean,
  /// using Student's t with n-1 degrees of freedom (as the paper does for
  /// its 33-run averages). Returns 0 for n < 2.
  double ci95_half_width() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided 97.5% quantile of Student's t distribution with df degrees of
/// freedom (so +-t covers 95%). Exact table for small df, asymptotic
/// expansion beyond.
double student_t_975(std::size_t df) noexcept;

/// Arithmetic mean of a vector (0 for empty).
double mean_of(const std::vector<double>& xs) noexcept;

/// Unbiased sample variance of a vector (0 for size < 2).
double variance_of(const std::vector<double>& xs) noexcept;

/// p-quantile (0 <= p <= 1) with linear interpolation, sorting `xs` in
/// place — the allocation-free form for hot paths that own a reusable
/// buffer (e.g. AdaptiveTimeout's sample window).
double quantile_of(std::span<double> xs, double p) noexcept;

/// Copying convenience overload (delegates to the span form).
double quantile_of(std::vector<double> xs, double p) noexcept;

/// Fixed-range histogram with integer bin counts. Values below lo land
/// in underflow, at or above hi in overflow; bins are half-open
/// [bin_lo, bin_hi). Because counts are integers, merge() is exactly
/// associative and commutative — the distribution a parallel sweep
/// reports is bit-identical for every thread count.
class Histogram {
 public:
  /// Unconfigured (no bins); add() is then a checked error.
  Histogram() = default;
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  /// Elementwise sum; shapes (lo, hi, bins) must match.
  void merge(const Histogram& other);

  bool configured() const noexcept { return !counts_.empty(); }
  std::size_t bins() const noexcept { return counts_.size(); }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::uint64_t count(std::size_t bin) const noexcept { return counts_[bin]; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  /// All observations, including under/overflow.
  std::uint64_t total() const noexcept;
  double bin_lo(std::size_t bin) const noexcept;
  double bin_hi(std::size_t bin) const noexcept;

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  double lo_ = 0.0;
  double hi_ = 0.0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// HDR-style log-bucketed latency histogram over non-negative integer
/// values (nanoseconds in practice). The first 2^kSubBits values are
/// exact; beyond that each power-of-two range is split into
/// 2^(kSubBits-1) linear sub-buckets, so the bucket lower bound is
/// within 2^-(kSubBits-1) (≈3% at kSubBits=6) of any value it holds.
/// Counts are integers, so merge() is exactly associative and
/// commutative; the true maximum (and count) are tracked exactly.
/// quantile() returns the bucket lower bound — a deterministic
/// representative — which is what makes online percentiles and
/// percentiles rebuilt offline from the same recorded values *equal*,
/// not merely close.
class LogHistogram {
 public:
  static constexpr int kSubBits = 6;         ///< values < 64 are exact
  static constexpr int kSub = 1 << kSubBits;

  /// Record one value; negatives clamp to 0.
  void record(long long v) noexcept;
  /// Elementwise sum; always well defined (no shape to mismatch).
  void merge(const LogHistogram& other);

  std::uint64_t count() const noexcept { return count_; }
  long long max() const noexcept { return max_; }
  long long sum() const noexcept { return sum_; }
  double mean() const noexcept;
  /// Deterministic q-quantile (0 <= q <= 1): the lower bound of the
  /// bucket holding the ceil(q*count)-th smallest value; exact max for
  /// q covering the last observation. 0 when empty.
  long long quantile(double q) const noexcept;

  bool empty() const noexcept { return count_ == 0; }

  /// Index of the bucket holding v, and the smallest value a bucket can
  /// hold (its deterministic representative). Exposed for the offline
  /// span analysis, which rebuilds the online histogram bit-for-bit.
  static std::size_t bucket_of(unsigned long long v) noexcept;
  static long long bucket_lo(std::size_t bucket) noexcept;

  friend bool operator==(const LogHistogram&, const LogHistogram&) = default;

 private:
  std::vector<std::uint64_t> counts_;  ///< grown on demand
  std::uint64_t count_ = 0;
  long long sum_ = 0;
  long long max_ = 0;
};

}  // namespace timing

// Statistics used by the measurement harness (Section 5 of the paper):
// means, sample variance, 95% confidence intervals (Figure 1(e)) and the
// variance series of Figure 1(f).
#pragma once

#include <cstddef>
#include <vector>

namespace timing {

/// Welford online accumulator: numerically stable mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean.
  double stderr_mean() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Half-width of the two-sided 95% confidence interval for the mean,
  /// using Student's t with n-1 degrees of freedom (as the paper does for
  /// its 33-run averages). Returns 0 for n < 2.
  double ci95_half_width() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided 97.5% quantile of Student's t distribution with df degrees of
/// freedom (so +-t covers 95%). Exact table for small df, asymptotic
/// expansion beyond.
double student_t_975(std::size_t df) noexcept;

/// Arithmetic mean of a vector (0 for empty).
double mean_of(const std::vector<double>& xs) noexcept;

/// Unbiased sample variance of a vector (0 for size < 2).
double variance_of(const std::vector<double>& xs) noexcept;

/// p-quantile (0 <= p <= 1) with linear interpolation; input copied and
/// sorted internally.
double quantile_of(std::vector<double> xs, double p) noexcept;

}  // namespace timing

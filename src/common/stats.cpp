#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace timing {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  if (other.n_ == 1) {
    // A single observation merges through the exact add() arithmetic, so
    // folding per-trial accumulators in trial order reproduces the serial
    // loop bit for bit.
    add(other.mean_);
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double nab = na + nb;
  const double delta = other.mean_ - mean_;
  mean_ += delta * (nb / nab);
  m2_ += other.m2_ + delta * delta * (na * nb / nab);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  if (n_ < 1) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci95_half_width() const noexcept {
  if (n_ < 2) return 0.0;
  return student_t_975(n_ - 1) * stderr_mean();
}

double student_t_975(std::size_t df) noexcept {
  // Table of t_{0.975, df} for df = 1..30, then selected larger values.
  static constexpr double kTable[31] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df];
  if (df <= 40) return 2.021;
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.960;
}

double mean_of(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance_of(const std::vector<double>& xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  TM_CHECK(bins > 0, "histogram needs at least one bin");
  TM_CHECK(hi > lo, "histogram range must be non-empty");
}

void Histogram::add(double x) noexcept {
  TM_CHECK(configured(), "add() on an unconfigured histogram");
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_ || std::isnan(x)) {
    ++overflow_;
    return;
  }
  const double span = hi_ - lo_;
  auto bin = static_cast<std::size_t>((x - lo_) / span *
                                      static_cast<double>(counts_.size()));
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // x just below hi
  ++counts_[bin];
}

void Histogram::merge(const Histogram& other) {
  if (!other.configured()) return;
  if (!configured()) {
    *this = other;
    return;
  }
  TM_CHECK(lo_ == other.lo_ && hi_ == other.hi_ &&
               counts_.size() == other.counts_.size(),
           "merging histograms of different shapes");
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

std::uint64_t Histogram::total() const noexcept {
  std::uint64_t t = underflow_ + overflow_;
  for (std::uint64_t c : counts_) t += c;
  return t;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) /
                   static_cast<double>(counts_.size());
}

std::size_t LogHistogram::bucket_of(unsigned long long v) noexcept {
  if (v < static_cast<unsigned long long>(kSub)) {
    return static_cast<std::size_t>(v);
  }
  // bit_width(v) > kSubBits here. Shift so the top kSubBits bits remain:
  // the sub-index lands in [kSub/2, kSub), giving kSub/2 linear
  // sub-buckets per power-of-two range.
  int width = 0;
  for (unsigned long long t = v; t != 0; t >>= 1) ++width;
  const int e = width - kSubBits;
  const auto sub = static_cast<std::size_t>(v >> e);  // in [kSub/2, kSub)
  return static_cast<std::size_t>(kSub) +
         static_cast<std::size_t>(e - 1) * (kSub / 2) + (sub - kSub / 2);
}

long long LogHistogram::bucket_lo(std::size_t bucket) noexcept {
  if (bucket < static_cast<std::size_t>(kSub)) {
    return static_cast<long long>(bucket);
  }
  const std::size_t off = bucket - static_cast<std::size_t>(kSub);
  const int e = static_cast<int>(off / (kSub / 2)) + 1;
  const auto sub = static_cast<unsigned long long>(off % (kSub / 2)) +
                   static_cast<unsigned long long>(kSub / 2);
  return static_cast<long long>(sub << e);
}

void LogHistogram::record(long long v) noexcept {
  if (v < 0) v = 0;
  const std::size_t b = bucket_of(static_cast<unsigned long long>(v));
  if (b >= counts_.size()) counts_.resize(b + 1, 0);
  ++counts_[b];
  ++count_;
  sum_ += v;
  if (count_ == 1 || v > max_) max_ = v;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (counts_.size() < other.counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

double LogHistogram::mean() const noexcept {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

long long LogHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q <= 0.0) q = 0.0;
  if (q >= 1.0) return max_;
  // Rank of the target observation, 1-based: ceil(q * count), at least 1.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  if (rank >= count_) return max_;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    cum += counts_[b];
    if (cum >= rank) return bucket_lo(b);
  }
  return max_;  // unreachable when counts are consistent
}

double quantile_of(std::span<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 1.0) return xs.back();
  const double pos = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double quantile_of(std::vector<double> xs, double p) noexcept {
  return quantile_of(std::span<double>(xs), p);
}

}  // namespace timing

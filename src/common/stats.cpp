#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace timing {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  if (n_ < 1) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci95_half_width() const noexcept {
  if (n_ < 2) return 0.0;
  return student_t_975(n_ - 1) * stderr_mean();
}

double student_t_975(std::size_t df) noexcept {
  // Table of t_{0.975, df} for df = 1..30, then selected larger values.
  static constexpr double kTable[31] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df];
  if (df <= 40) return 2.021;
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.960;
}

double mean_of(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance_of(const std::vector<double>& xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double quantile_of(std::vector<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 1.0) return xs.back();
  const double pos = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

}  // namespace timing

// Core identifier and value types shared by every module.
//
// The paper's system model (Section 2): a set Pi of n > 1 processes
// p_1..p_n, fully connected, less than n/2 of which may crash. Consensus is
// defined over a totally ordered value domain (Algorithm 2 relies on the
// order via maxEST). We use a 64-bit integer domain, which is totally
// ordered and large enough to encode application commands (see
// examples/replicated_log.cpp).
#pragma once

#include <cstdint>
#include <limits>

namespace timing {

/// Index of a process in Pi. Processes are numbered 0..n-1 internally
/// (the paper numbers them 1..n; the shift is cosmetic).
using ProcessId = int;

/// Round number. Rounds start at 1 (round 0 is "before initialize()").
using Round = int;

/// Timestamp ("ballot" in Paxos terminology). Algorithm 2 uses round
/// numbers as timestamps, so Timestamp and Round share representation.
using Timestamp = int;

/// Consensus value domain. Totally ordered, as the paper requires.
using Value = std::int64_t;

/// Sentinel for "no value" (the paper's bottom). Decisions are always
/// proposals, and proposals are required to be != kNoValue.
inline constexpr Value kNoValue = std::numeric_limits<Value>::min();

/// Sentinel for "no process".
inline constexpr ProcessId kNoProcess = -1;

/// Majority threshold: a set is a majority iff its size > n/2, i.e.
/// size >= majority_size(n) = floor(n/2) + 1.
constexpr int majority_size(int n) noexcept { return n / 2 + 1; }

/// True iff `count` processes out of `n` form a strict majority.
constexpr bool is_majority(int count, int n) noexcept {
  return count >= majority_size(n);
}

}  // namespace timing

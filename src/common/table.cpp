#include "common/table.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace timing {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(std::llround(v)));
  return buf;
}

void Table::print_csv(std::ostream& os, const std::string& caption) const {
  if (!caption.empty()) os << "# " << caption << "\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const std::string& cell = row[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void Table::print(std::ostream& os, const std::string& caption) const {
  if (!caption.empty()) os << caption << "\n";
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << "\n";
  };
  emit(header_);
  std::size_t total = header_.size() ? (header_.size() - 1) * 2 : 0;
  for (auto w : width) total += w;
  for (std::size_t i = 0; i < total; ++i) os << '-';
  os << "\n";
  for (const auto& row : rows_) emit(row);
}

}  // namespace timing

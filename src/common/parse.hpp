// Checked string-to-number parsing shared by every CLI surface (the
// scenario override grammar, timing_lab, trace_tool) and the TIMING_*
// environment knobs. All parsers consume the ENTIRE string: trailing
// garbage ("12x", "1.5.2") is a parse failure, not a silent truncation
// the way std::atoi / bare strtol would treat it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace timing {

/// Base-10 integer; rejects empty strings, overflow, and trailing bytes.
bool parse_long(const std::string& s, long& out);
bool parse_int(const std::string& s, int& out);
bool parse_u64(const std::string& s, std::uint64_t& out);

/// Floating point (strtod grammar); rejects inf/nan spellings and
/// trailing bytes.
bool parse_double(const std::string& s, double& out);

/// Comma-separated lists; every element must parse and the list must be
/// non-empty ("140,200" -> {140, 200}).
bool parse_int_list(const std::string& s, std::vector<int>& out);
bool parse_double_list(const std::string& s, std::vector<double>& out);

}  // namespace timing

// Minimal fixed-width table printer. Every bench binary prints the rows /
// series of one of the paper's subfigures through this, so the output is
// uniform and easy to diff against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace timing {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 3);
  /// Format as integer (rounded).
  static std::string integer(double v);

  /// Render with column alignment, a separator under the header, and an
  /// optional caption line above.
  void print(std::ostream& os, const std::string& caption = "") const;

  /// Render as CSV (caption as a leading '#' comment). Cells containing
  /// commas or quotes are quoted per RFC 4180.
  void print_csv(std::ostream& os, const std::string& caption = "") const;

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Structured access for machine emitters (the scenario results JSONL
  /// writer re-emits every printed table row).
  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::vector<std::string>>& body() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace timing

// Deterministic parallel trial execution.
//
// The Monte-Carlo harness fans independent trials out over a shared
// thread pool. Determinism is preserved by construction, not by luck:
//
//  * every trial derives its randomness from (root seed, trial index)
//    via Rng sub-streams (see rng.hpp), never from the executing thread;
//  * results land in a vector slot owned by the trial index, and all
//    statistical folding happens afterwards in index order on the
//    calling thread.
//
// Hence trial k computes bit-identical values whether the pool has 1, 2
// or 64 threads, and the folded statistics match today's serial loops
// exactly.
//
// Thread count comes from the TIMING_THREADS environment variable
// (default: hardware concurrency). TIMING_THREADS=1 bypasses the pool
// entirely and runs inline on the calling thread.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace timing {

/// std::thread::hardware_concurrency(), clamped to >= 1.
int hardware_threads() noexcept;

/// Pool size: TIMING_THREADS if set (clamped to [1, 256]), else
/// hardware_threads(). Read once; later env changes are ignored.
int configured_threads() noexcept;

/// Thread count parallel_for will actually use right now (the innermost
/// ScopedThreads override, else configured_threads()).
int effective_threads() noexcept;

/// Temporarily override the thread count (for tests comparing 1-, 2- and
/// 8-thread executions of the same workload). Not for concurrent use.
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) noexcept;
  ~ScopedThreads();
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  int prev_;
};

/// Run body(i) for every i in [0, n), spread over the pool. Blocks until
/// all iterations finish; the calling thread participates. Iterations
/// must be independent (they run concurrently and in no particular
/// order). Exceptions thrown by `body` cancel outstanding work and the
/// first one is rethrown here. Calls nested inside a pool worker run
/// inline (no deadlock, no oversubscription).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

/// Map trials [0, n) to values of T in parallel. out[k] is trial k's
/// result regardless of scheduling, so any fold performed afterwards in
/// index order is independent of the thread count. T must be
/// default-constructible.
template <typename T, typename Fn>
std::vector<T> run_trials(std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace timing

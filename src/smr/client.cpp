#include "smr/client.hpp"

#include <cstring>
#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "history/model.hpp"
#include "history/recorder.hpp"
#include "obs/metrics.hpp"
#include "smr/smr.hpp"

namespace timing {

const char* to_string(CorruptMode m) noexcept {
  switch (m) {
    case CorruptMode::kNone: return "none";
    case CorruptMode::kStaleRead: return "stale";
    case CorruptMode::kLostUpdate: return "lost";
  }
  return "none";
}

bool corrupt_mode_from_string(const char* s, CorruptMode& out) noexcept {
  if (std::strcmp(s, "none") == 0) {
    out = CorruptMode::kNone;
    return true;
  }
  if (std::strcmp(s, "stale") == 0) {
    out = CorruptMode::kStaleRead;
    return true;
  }
  if (std::strcmp(s, "lost") == 0) {
    out = CorruptMode::kLostUpdate;
    return true;
  }
  return false;
}

namespace {

struct ClientState {
  bool busy = false;
  int rid = 0;             ///< request id of the current op
  int next_rid = 1;
  int ops_done = 0;
  int open_instances = 0;  ///< instances the current op has been open
  std::uint8_t func = 0;
  std::int32_t key = 0;
  Value a = kNoValue;
  Value b = kNoValue;
  Command cmd = kNoopCommand;
  bool sabotaged = false;  ///< kLostUpdate: this proposal went out as noop
  bool queued = false;     ///< span state: current op reached a proposal
  long long t_op = 0;      ///< op-span begin reading (timed tracer)
  long long t_queue = 0;   ///< queue-span begin reading
  long long submit_tick = 0;  ///< pipelined harness: tick of submission
};

/// Nonzero even 16-bit value — the update-value domain of the harness.
/// Register states are therefore 0 (initial), even (writes / cas
/// replacements) or odd (append chains), never anything else.
std::uint16_t even16(Rng& rng) {
  return static_cast<std::uint16_t>(2 + 2 * rng.uniform_int(32766));
}

/// The op mix both harnesses draw: every client's first op is an update
/// (so each seeded trial commits nonzero state the probe reads anchor
/// on); afterwards registers see a 40/40/20 read/write/cas mix and
/// append keys a 50/50 read/append mix. Fills func/key/a/b/cmd of `cs`
/// (rid must already be assigned).
void choose_op(Rng& rng, ClientState& cs, ProcessId c, int total_keys,
               int reg_keys) {
  std::uint16_t a16 = 0;
  std::uint16_t b16 = 0;
  if (cs.ops_done == 0) {
    cs.key = c % total_keys;
    if (cs.key < reg_keys) {
      cs.func = op_func::kWrite;
      a16 = even16(rng);
    } else {
      cs.func = op_func::kAppend;
      a16 = static_cast<std::uint16_t>(1 + rng.uniform_int(65535));
    }
  } else {
    cs.key = static_cast<std::int32_t>(
        rng.uniform_int(static_cast<std::uint64_t>(total_keys)));
    if (cs.key < reg_keys) {
      const std::uint64_t pick = rng.uniform_int(10);
      if (pick < 4) {
        cs.func = op_func::kRead;
      } else if (pick < 8) {
        cs.func = op_func::kWrite;
        a16 = even16(rng);
      } else {
        cs.func = op_func::kCas;
        a16 = even16(rng);
        b16 = even16(rng);
      }
    } else {
      if (rng.uniform_int(2) == 0) {
        cs.func = op_func::kRead;
      } else {
        cs.func = op_func::kAppend;
        a16 = static_cast<std::uint16_t>(1 + rng.uniform_int(65535));
      }
    }
  }
  const bool has_a = cs.func != op_func::kRead;
  const bool has_b = cs.func == op_func::kCas;
  cs.a = has_a ? static_cast<Value>(a16) : kNoValue;
  cs.b = has_b ? static_cast<Value>(b16) : kNoValue;
  cs.cmd = make_register_command(cs.func, cs.rid, c, cs.key, a16, b16);
}

}  // namespace

SmrClientReport run_smr_clients(const SmrClientConfig& cfg,
                                const InstanceEnvFactory& env_of) {
  const int total_keys = cfg.reg_keys + cfg.append_keys;
  TM_CHECK(cfg.n > 1, "replication needs n > 1");
  TM_CHECK(cfg.clients > 0, "need at least one client");
  TM_CHECK(total_keys > 0, "need at least one key");
  TM_CHECK(cfg.clients + total_keys <= 255 && total_keys <= 255,
           "client/key ids must fit the register command encoding");
  TM_CHECK(cfg.instances > 0 && cfg.op_timeout_instances > 0, "bad phases");

  SmrGroupConfig gcfg;
  gcfg.n = cfg.n;
  gcfg.algorithm = cfg.algorithm;
  gcfg.leader = cfg.leader;
  std::vector<std::unique_ptr<StateMachine>> machines;
  for (int i = 0; i < cfg.n; ++i) {
    machines.push_back(std::make_unique<RegisterStateMachine>());
  }
  SmrGroup group(gcfg, std::move(machines));

  SpanTracer* spans = cfg.spans;
  const bool sp_on = spans != nullptr && spans->enabled();
  const bool record_lat =
      sp_on && spans->timed() && cfg.metrics != nullptr;
  group.set_span_tracer(spans);

  Rng rng(cfg.seed);
  HistoryRecorder rec;
  SmrClientReport rep;
  std::vector<ClientState> clients(static_cast<std::size_t>(cfg.clients));
  std::vector<bool> last_applied;
  bool stale_done = false;
  bool lost_done = false;
  int env_index = 0;

  auto run_one = [&](const std::vector<Command>& proposals) {
    InstanceEnv env = env_of(env_index++);
    TM_CHECK(env.sampler != nullptr, "instance env needs a sampler");
    ++rep.instances_run;
    const std::vector<Round>* crashes =
        env.crash_rounds.empty() ? nullptr : &env.crash_rounds;
    SmrInstanceResult r =
        group.run_instance(proposals, *env.sampler, crashes, env.max_rounds);
    if (r.decided) {
      ++rep.instances_decided;
      last_applied = r.applied;
    }
    return r;
  };

  // A replica that applied this instance's command (hence the whole log).
  auto observer =
      [&](const std::vector<bool>& applied) -> const RegisterStateMachine& {
    for (int i = 0; i < cfg.n; ++i) {
      if (applied[static_cast<std::size_t>(i)]) {
        return static_cast<const RegisterStateMachine&>(group.machine(i));
      }
    }
    TM_CHECK(false, "decided instance with no live applier");
    return static_cast<const RegisterStateMachine&>(group.machine(0));
  };

  auto start_op = [&](ProcessId c) {
    ClientState& cs = clients[static_cast<std::size_t>(c)];
    cs.busy = true;
    cs.open_instances = 0;
    cs.sabotaged = false;
    cs.rid = cs.next_rid++;
    choose_op(rng, cs, c, total_keys, cfg.reg_keys);
    rec.invoke(c, cs.func, cs.key, cs.rid, cs.a, cs.b);
    if (sp_on) {
      const std::uint64_t op_span =
          make_span_id(span_kind::kOp, static_cast<std::uint64_t>(c),
                       static_cast<std::uint64_t>(cs.rid));
      cs.queued = false;
      cs.t_op = spans->begin(op_span, 0, span_kind::kOp);
      cs.t_queue = spans->begin(
          make_span_id(span_kind::kQueue, static_cast<std::uint64_t>(c),
                       static_cast<std::uint64_t>(cs.rid)),
          op_span, span_kind::kQueue);
    }
  };

  // The op reached its first proposal: the queue phase ends and the
  // commit phase begins.
  auto mark_queued = [&](ProcessId c) {
    ClientState& cs = clients[static_cast<std::size_t>(c)];
    if (!sp_on || cs.queued) return;
    cs.queued = true;
    const long long tq = spans->end(
        make_span_id(span_kind::kQueue, static_cast<std::uint64_t>(c),
                     static_cast<std::uint64_t>(cs.rid)),
        span_kind::kQueue);
    if (record_lat) {
      cfg.metrics->latency("op.queue_ns").record(tq - cs.t_queue);
    }
    spans->begin(
        make_span_id(span_kind::kCommit, static_cast<std::uint64_t>(c),
                     static_cast<std::uint64_t>(cs.rid)),
        make_span_id(span_kind::kOp, static_cast<std::uint64_t>(c),
                     static_cast<std::uint64_t>(cs.rid)),
        span_kind::kCommit);
  };

  // Close the op's spans; ok completions feed op.commit_ns from the very
  // readings the span events carry (the offline-rebuild equality).
  auto end_op_spans = [&](ProcessId c, bool committed_ok) {
    if (!sp_on) return;
    ClientState& cs = clients[static_cast<std::size_t>(c)];
    if (cs.queued) {
      spans->end(
          make_span_id(span_kind::kCommit, static_cast<std::uint64_t>(c),
                       static_cast<std::uint64_t>(cs.rid)),
          span_kind::kCommit);
    } else {
      const long long tq = spans->end(
          make_span_id(span_kind::kQueue, static_cast<std::uint64_t>(c),
                       static_cast<std::uint64_t>(cs.rid)),
          span_kind::kQueue);
      if (record_lat) {
        cfg.metrics->latency("op.queue_ns").record(tq - cs.t_queue);
      }
    }
    const long long t = spans->end(
        make_span_id(span_kind::kOp, static_cast<std::uint64_t>(c),
                     static_cast<std::uint64_t>(cs.rid)),
        span_kind::kOp);
    if (committed_ok && record_lat) {
      cfg.metrics->latency("op.commit_ns").record(t - cs.t_op);
    }
  };

  auto close_op = [&](ProcessId c) {
    ClientState& cs = clients[static_cast<std::size_t>(c)];
    cs.busy = false;
    ++cs.ops_done;
  };

  // ------------------------------------------------------- main phase --
  for (int inst = 0; inst < cfg.instances; ++inst) {
    for (ProcessId c = 0; c < cfg.clients; ++c) {
      if (!clients[static_cast<std::size_t>(c)].busy) start_op(c);
    }
    // Each client submits through replica (c mod n); a replica proposes
    // the longest-open op among its clients (ties to the lowest id).
    std::vector<Command> proposals(static_cast<std::size_t>(cfg.n),
                                   kNoopCommand);
    std::vector<ProcessId> proposer(static_cast<std::size_t>(cfg.n),
                                    kNoProcess);
    for (ProcessId c = 0; c < cfg.clients; ++c) {
      const ClientState& cs = clients[static_cast<std::size_t>(c)];
      if (!cs.busy) continue;
      ProcessId& cur = proposer[static_cast<std::size_t>(c % cfg.n)];
      if (cur == kNoProcess ||
          cs.open_instances >
              clients[static_cast<std::size_t>(cur)].open_instances) {
        cur = c;
      }
    }
    std::set<ProcessId> proposed;
    bool sabotaged_this_instance = false;
    for (ProcessId i = 0; i < cfg.n; ++i) {
      const ProcessId c = proposer[static_cast<std::size_t>(i)];
      if (c == kNoProcess) continue;
      ClientState& cs = clients[static_cast<std::size_t>(c)];
      if (cfg.corrupt == CorruptMode::kLostUpdate && !lost_done &&
          !sabotaged_this_instance && cs.func == op_func::kAppend) {
        proposals[static_cast<std::size_t>(i)] = kNoopCommand;
        cs.sabotaged = true;
        sabotaged_this_instance = true;
      } else {
        proposals[static_cast<std::size_t>(i)] = cs.cmd;
        cs.sabotaged = false;
      }
      proposed.insert(c);
      mark_queued(c);
    }

    const SmrInstanceResult r = run_one(proposals);
    if (sp_on) {
      // Each proposed op's commit span is caused by the instance that
      // carried it (`proposed` is a sorted set, so edge order is stable).
      const std::uint64_t inst_span = make_span_id(
          span_kind::kInstance,
          static_cast<std::uint64_t>(rep.instances_run - 1));
      for (ProcessId c : proposed) {
        spans->cause(
            make_span_id(
                span_kind::kCommit, static_cast<std::uint64_t>(c),
                static_cast<std::uint64_t>(
                    clients[static_cast<std::size_t>(c)].rid)),
            inst_span, span_kind::kCommit);
      }
    }
    for (ProcessId c = 0; c < cfg.clients; ++c) {
      ClientState& cs = clients[static_cast<std::size_t>(c)];
      if (cs.busy) ++cs.open_instances;
    }

    if (r.decided) {
      if (is_register_command(r.command)) {
        const ProcessId wc = reg_command_client(r.command);
        TM_CHECK(wc >= 0 && wc < cfg.clients, "decided client out of range");
        ClientState& ws = clients[static_cast<std::size_t>(wc)];
        TM_CHECK(ws.busy && ws.cmd == r.command,
                 "decided command must be a proposed client op");
        Value result = kNoValue;
        TM_CHECK(observer(r.applied).last_result(wc, result),
                 "winner must have a session result");
        rec.ok(wc, result);
        ++rep.ops_ok;
        end_op_spans(wc, true);
        close_op(wc);
      }
      if (sabotaged_this_instance) {
        // Acknowledge the sabotaged append even though a noop went out
        // in its place: the command was never proposed, hence never
        // applied — an acknowledged lost update. The ok completes before
        // the probe read is invoked, so real-time order forces the probe
        // to observe the append; it cannot, and the checker rejects.
        for (ProcessId c = 0; c < cfg.clients; ++c) {
          ClientState& cs = clients[static_cast<std::size_t>(c)];
          if (!cs.busy || !cs.sabotaged) continue;
          const Value fabricated =
              register_step(observer(r.applied).value(cs.key), cs.func,
                            cs.a, cs.b)
                  .result;
          rec.ok(c, fabricated);
          ++rep.ops_ok;
          lost_done = true;
          end_op_spans(c, true);
          close_op(c);
          break;
        }
      }
      // Everyone else who was proposed into this decided instance lost:
      // their command is provably never applied in this harness.
      for (ProcessId c : proposed) {
        if (!clients[static_cast<std::size_t>(c)].busy) continue;
        rec.fail(c);
        ++rep.ops_fail;
        end_op_spans(c, false);
        close_op(c);
      }
    } else {
      // Undecided instance: close stragglers as info (timeout — unknown
      // whether a future quorum saw the command, so not a fail).
      for (ProcessId c = 0; c < cfg.clients; ++c) {
        ClientState& cs = clients[static_cast<std::size_t>(c)];
        if (!cs.busy || cs.open_instances < cfg.op_timeout_instances) {
          continue;
        }
        rec.info(c);
        ++rep.ops_info;
        end_op_spans(c, false);
        close_op(c);
      }
    }
  }
  // Ops still open when the trial ends stay uncompleted (info).
  for (ProcessId c = 0; c < cfg.clients; ++c) {
    if (clients[static_cast<std::size_t>(c)].busy) ++rep.ops_info;
  }

  // ------------------------------------------------------ probe phase --
  // Fresh clients read every key over fault-free instances, anchoring
  // the final state in the history.
  for (std::int32_t k = 0; k < total_keys; ++k) {
    const ProcessId pc = cfg.clients + k;
    const Command cmd = make_register_command(op_func::kRead, 1, pc, k, 0, 0);
    rec.invoke(pc, op_func::kRead, k, 1);
    const std::uint64_t p_op =
        make_span_id(span_kind::kOp, static_cast<std::uint64_t>(pc), 1);
    const std::uint64_t p_queue =
        make_span_id(span_kind::kQueue, static_cast<std::uint64_t>(pc), 1);
    const std::uint64_t p_commit =
        make_span_id(span_kind::kCommit, static_cast<std::uint64_t>(pc), 1);
    long long p_t0 = 0;
    long long p_tq0 = 0;
    bool p_queued = false;
    if (sp_on) {
      p_t0 = spans->begin(p_op, 0, span_kind::kOp);
      p_tq0 = spans->begin(p_queue, p_op, span_kind::kQueue);
    }
    bool done = false;
    for (int attempt = 0; attempt < cfg.probe_attempts && !done; ++attempt) {
      std::vector<Command> proposals(static_cast<std::size_t>(cfg.n),
                                     kNoopCommand);
      proposals[static_cast<std::size_t>(pc % cfg.n)] = cmd;
      if (sp_on && !p_queued) {
        p_queued = true;
        const long long tq = spans->end(p_queue, span_kind::kQueue);
        if (record_lat) {
          cfg.metrics->latency("op.queue_ns").record(tq - p_tq0);
        }
        spans->begin(p_commit, p_op, span_kind::kCommit);
      }
      const SmrInstanceResult r = run_one(proposals);
      if (sp_on) {
        spans->cause(p_commit,
                     make_span_id(span_kind::kInstance,
                                  static_cast<std::uint64_t>(
                                      rep.instances_run - 1)),
                     span_kind::kCommit);
      }
      if (!r.decided || r.command != cmd) continue;
      Value result = kNoValue;
      TM_CHECK(observer(r.applied).last_result(pc, result),
               "probe must have a session result");
      if (cfg.corrupt == CorruptMode::kStaleRead && !stale_done &&
          result != kRegInitial) {
        result = kRegInitial;  // report none of the committed updates
        stale_done = true;
      }
      rec.ok(pc, result);
      ++rep.ops_ok;
      if (sp_on) {
        spans->end(p_commit, span_kind::kCommit);
        const long long t = spans->end(p_op, span_kind::kOp);
        if (record_lat) {
          cfg.metrics->latency("op.commit_ns").record(t - p_t0);
        }
      }
      done = true;
    }
    if (!done) ++rep.ops_info;  // probe left open (its spans stay open too)
  }

  rep.events = rec.events();
  if (!last_applied.empty()) {
    rep.consistent = group.consistent_among(last_applied);
    const RegisterStateMachine& m = observer(last_applied);
    for (std::int32_t k = 0; k < total_keys; ++k) {
      rep.final_values.push_back(m.value(k));
    }
  } else {
    rep.final_values.assign(static_cast<std::size_t>(total_keys),
                            kRegInitial);
  }
  return rep;
}

SmrClientReport run_pipelined_smr_clients(const SmrClientConfig& cfg,
                                          const SmrPipelineConfig& pcfg,
                                          const SlotEnvFactory& env_of) {
  const int total_keys = cfg.reg_keys + cfg.append_keys;
  TM_CHECK(cfg.n > 1, "replication needs n > 1");
  TM_CHECK(cfg.clients > 0, "need at least one client");
  TM_CHECK(total_keys > 0, "need at least one key");
  TM_CHECK(cfg.clients + total_keys <= 255 && total_keys <= 255,
           "client/key ids must fit the register command encoding");
  TM_CHECK(pcfg.ticks > 0 && pcfg.op_timeout_ticks > 0, "bad phases");

  ReplicatedLogConfig lcfg;
  lcfg.n = cfg.n;
  lcfg.algorithm = cfg.algorithm;
  lcfg.leader = cfg.leader;
  lcfg.pipeline = pcfg.pipeline;
  lcfg.batch = pcfg.batch;
  lcfg.flush_ticks = pcfg.flush_ticks;
  lcfg.max_attempts_per_slot = pcfg.max_attempts_per_slot;
  lcfg.spans = cfg.spans;
  std::vector<std::unique_ptr<StateMachine>> machines;
  for (int i = 0; i < cfg.n; ++i) {
    machines.push_back(std::make_unique<RegisterStateMachine>());
  }
  ReplicatedLog rlog(lcfg, std::move(machines), env_of);

  SpanTracer* spans = cfg.spans;
  const bool sp_on = spans != nullptr && spans->enabled();
  const bool record_lat =
      sp_on && spans->timed() && cfg.metrics != nullptr;

  Rng rng(cfg.seed);
  HistoryRecorder rec;
  SmrClientReport rep;
  std::vector<ClientState> clients(static_cast<std::size_t>(cfg.clients));
  bool stale_done = false;
  ProcessId lost_client = kNoProcess;  ///< client whose append went out as noop

  // A replica that applied this slot (hence the whole log prefix).
  auto observer =
      [&](const std::vector<bool>& applied) -> const RegisterStateMachine& {
    for (int i = 0; i < cfg.n; ++i) {
      if (applied[static_cast<std::size_t>(i)]) {
        return static_cast<const RegisterStateMachine&>(rlog.machine(i));
      }
    }
    TM_CHECK(false, "committed slot with no live applier");
    return static_cast<const RegisterStateMachine&>(rlog.machine(0));
  };

  auto end_op_spans = [&](ProcessId c, bool committed_ok) {
    if (!sp_on) return;
    ClientState& cs = clients[static_cast<std::size_t>(c)];
    spans->end(
        make_span_id(span_kind::kCommit, static_cast<std::uint64_t>(c),
                     static_cast<std::uint64_t>(cs.rid)),
        span_kind::kCommit);
    const long long t = spans->end(
        make_span_id(span_kind::kOp, static_cast<std::uint64_t>(c),
                     static_cast<std::uint64_t>(cs.rid)),
        span_kind::kOp);
    if (committed_ok && record_lat) {
      cfg.metrics->latency("op.commit_ns").record(t - cs.t_op);
    }
  };

  auto close_op = [&](ProcessId c) {
    ClientState& cs = clients[static_cast<std::size_t>(c)];
    cs.busy = false;
    ++cs.ops_done;
  };

  // Invoke + submit in one step: the op enters the open batch the same
  // tick it is invoked, so the queue span covers only the client-side
  // handoff and the commit span covers batch wait + consensus + apply.
  auto start_and_submit = [&](ProcessId c) {
    ClientState& cs = clients[static_cast<std::size_t>(c)];
    cs.busy = true;
    cs.sabotaged = false;
    cs.submit_tick = rlog.now();
    cs.rid = cs.next_rid++;
    choose_op(rng, cs, c, total_keys, cfg.reg_keys);
    rec.invoke(c, cs.func, cs.key, cs.rid, cs.a, cs.b);
    std::uint64_t op_span = 0;
    if (sp_on) {
      op_span = make_span_id(span_kind::kOp, static_cast<std::uint64_t>(c),
                             static_cast<std::uint64_t>(cs.rid));
      const std::uint64_t q_span =
          make_span_id(span_kind::kQueue, static_cast<std::uint64_t>(c),
                       static_cast<std::uint64_t>(cs.rid));
      cs.t_op = spans->begin(op_span, 0, span_kind::kOp);
      cs.t_queue = spans->begin(q_span, op_span, span_kind::kQueue);
      const long long tq = spans->end(q_span, span_kind::kQueue);
      if (record_lat) {
        cfg.metrics->latency("op.queue_ns").record(tq - cs.t_queue);
      }
      spans->begin(
          make_span_id(span_kind::kCommit, static_cast<std::uint64_t>(c),
                       static_cast<std::uint64_t>(cs.rid)),
          op_span, span_kind::kCommit);
    }
    if (cfg.corrupt == CorruptMode::kLostUpdate &&
        lost_client == kNoProcess && cs.func == op_func::kAppend) {
      // The append is silently replaced by a noop in the batch; when its
      // slot commits it will be acknowledged ok anyway — an acknowledged
      // lost update the probe read of the key then exposes.
      rlog.submit(kNoopCommand, op_span);
      cs.sabotaged = true;
      lost_client = c;
    } else {
      rlog.submit(cs.cmd, op_span);
    }
  };

  // Probe-phase bookkeeping (one probe client per key, rid 1).
  struct ProbeState {
    bool open = false;
    bool done = false;
    int attempts = 0;
    long long t_op = 0;
  };
  std::vector<ProbeState> probes(static_cast<std::size_t>(total_keys));

  auto complete_probe = [&](std::int32_t key,
                            const std::vector<bool>& applied) {
    ProbeState& ps = probes[static_cast<std::size_t>(key)];
    const ProcessId pc = cfg.clients + key;
    if (!ps.open) return;
    ps.open = false;
    Value result = kNoValue;
    TM_CHECK(observer(applied).last_result(pc, result),
             "probe must have a session result");
    if (cfg.corrupt == CorruptMode::kStaleRead && !stale_done &&
        result != kRegInitial) {
      result = kRegInitial;  // report none of the committed updates
      stale_done = true;
    }
    rec.ok(pc, result);
    ++rep.ops_ok;
    ps.done = true;
    if (sp_on) {
      spans->end(make_span_id(span_kind::kCommit,
                              static_cast<std::uint64_t>(pc), 1),
                 span_kind::kCommit);
      const long long t = spans->end(
          make_span_id(span_kind::kOp, static_cast<std::uint64_t>(pc), 1),
          span_kind::kOp);
      if (record_lat) {
        cfg.metrics->latency("op.commit_ns").record(t - ps.t_op);
      }
    }
  };

  // Resolve every op riding a freshly committed (or abandoned) slot.
  auto handle_committed = [&]() {
    for (const SlotRecord& sr : rlog.take_committed()) {
      rep.instances_run += sr.attempts;
      if (sr.committed) ++rep.instances_decided;
      const std::uint64_t slot_span = make_span_id(
          span_kind::kSlot, static_cast<std::uint64_t>(sr.slot));
      for (const LogOp& op : sr.ops) {
        // The sabotaged append rides as the only noop the harness ever
        // submits; everything else decodes to its submitting client.
        const bool is_lost = op.cmd == kNoopCommand;
        const ProcessId c =
            is_lost ? lost_client : reg_command_client(op.cmd);
        if (c >= cfg.clients) {
          // Probe read: a committed slot completes it; an abandoned slot
          // reopens it for a resubmission in the probe loop.
          if (sr.committed) {
            complete_probe(c - cfg.clients, sr.applied);
          } else {
            probes[static_cast<std::size_t>(c - cfg.clients)].open = false;
          }
          continue;
        }
        ClientState& cs = clients[static_cast<std::size_t>(c)];
        const bool current =
            cs.busy && (is_lost ? cs.sabotaged : cs.cmd == op.cmd);
        if (!current) continue;  // already closed as info (timeout)
        if (!sr.committed) {
          // Abandoned slots are never applied anywhere, so fail is
          // sound (the command provably never takes effect).
          rec.fail(c);
          ++rep.ops_fail;
          end_op_spans(c, false);
          close_op(c);
          continue;
        }
        if (sp_on) {
          spans->cause(
              make_span_id(span_kind::kCommit, static_cast<std::uint64_t>(c),
                           static_cast<std::uint64_t>(cs.rid)),
              slot_span, span_kind::kCommit);
        }
        Value result = kNoValue;
        if (is_lost) {
          // Fabricate the result the append WOULD have produced.
          result = register_step(observer(sr.applied).value(cs.key),
                                 cs.func, cs.a, cs.b)
                       .result;
        } else {
          TM_CHECK(observer(sr.applied).last_result(c, result),
                   "committed op must have a session result");
        }
        rec.ok(c, result);
        ++rep.ops_ok;
        end_op_spans(c, true);
        close_op(c);
      }
    }
  };

  auto timeout_scan = [&]() {
    for (ProcessId c = 0; c < cfg.clients; ++c) {
      ClientState& cs = clients[static_cast<std::size_t>(c)];
      if (!cs.busy ||
          rlog.now() - cs.submit_tick < pcfg.op_timeout_ticks) {
        continue;
      }
      // The command stays in its batch and may commit later; info keeps
      // the op concurrent forever, which covers both outcomes.
      rec.info(c);
      ++rep.ops_info;
      end_op_spans(c, false);
      close_op(c);
    }
  };

  // ------------------------------------------------------- main phase --
  for (int t = 0; t < pcfg.ticks; ++t) {
    for (ProcessId c = 0; c < cfg.clients; ++c) {
      if (!clients[static_cast<std::size_t>(c)].busy) start_and_submit(c);
    }
    rlog.tick();
    handle_committed();
    timeout_scan();
  }
  // Drain: no new submissions; every accepted command resolves (commit
  // or abandonment) within the attempt budget.
  for (int t = 0; t < pcfg.drain_ticks && !rlog.drained(); ++t) {
    rlog.tick();
    handle_committed();
    timeout_scan();
  }
  for (ProcessId c = 0; c < cfg.clients; ++c) {
    if (clients[static_cast<std::size_t>(c)].busy) ++rep.ops_info;
  }

  // ------------------------------------------------------ probe phase --
  // Fresh clients read every key. Every main-phase slot has resolved
  // (the drain loop above), so pcfg.on_probe_start can flip the env
  // factory to fault-free environments for all probe slots.
  if (pcfg.on_probe_start) pcfg.on_probe_start();
  for (int attempt = 0; attempt < cfg.probe_attempts; ++attempt) {
    bool any = false;
    for (std::int32_t k = 0; k < total_keys; ++k) {
      ProbeState& ps = probes[static_cast<std::size_t>(k)];
      if (ps.done || ps.open || ps.attempts >= cfg.probe_attempts) continue;
      const ProcessId pc = cfg.clients + k;
      const Command cmd =
          make_register_command(op_func::kRead, 1, pc, k, 0, 0);
      std::uint64_t op_span = 0;
      if (ps.attempts == 0) {
        rec.invoke(pc, op_func::kRead, k, 1);
        if (sp_on) {
          op_span = make_span_id(span_kind::kOp,
                                 static_cast<std::uint64_t>(pc), 1);
          ps.t_op = spans->begin(op_span, 0, span_kind::kOp);
          spans->begin(make_span_id(span_kind::kCommit,
                                    static_cast<std::uint64_t>(pc), 1),
                       op_span, span_kind::kCommit);
        }
      } else if (sp_on) {
        op_span = make_span_id(span_kind::kOp,
                               static_cast<std::uint64_t>(pc), 1);
      }
      ps.open = true;
      ++ps.attempts;
      any = true;
      rlog.submit(cmd, op_span);
    }
    if (!any) break;
    for (int t = 0; t < pcfg.drain_ticks && !rlog.drained(); ++t) {
      rlog.tick();
      handle_committed();
    }
  }
  for (const ProbeState& ps : probes) {
    if (!ps.done) ++rep.ops_info;  // probe left open (spans stay open)
  }

  rep.events = rec.events();
  const std::vector<bool> alive = rlog.alive_at_end();
  rep.consistent = rlog.consistent_among(alive);
  if (rlog.slots_committed() > 0) {
    const RegisterStateMachine& m = observer(alive);
    for (std::int32_t k = 0; k < total_keys; ++k) {
      rep.final_values.push_back(m.value(k));
    }
  } else {
    rep.final_values.assign(static_cast<std::size_t>(total_keys),
                            kRegInitial);
  }
  return rep;
}

}  // namespace timing

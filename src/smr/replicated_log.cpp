#include "smr/replicated_log.hpp"

#include "common/check.hpp"
#include "oracles/omega.hpp"
#include "smr/smr.hpp"

namespace timing {

Value slot_decree(int slot) noexcept {
  // Bit 61 keeps the decree positive, clear of the sign bit and of the
  // KV (bit 62 clear, bits 0..61 payload capped well below) and register
  // (bit 62 set) command encodings as a distinct tag. The decree is
  // never applied to a state machine, but keeping the spaces disjoint
  // makes a mixed-up value loudly wrong.
  return (Value{1} << 61) + slot;
}

/// One in-flight slot: its batch record, the current attempt's engine +
/// environment, and the span bookkeeping that survives across attempts.
struct ReplicatedLog::Flight {
  SlotRecord rec;
  int attempt = 0;  ///< 0-based attempt index
  std::unique_ptr<TimelinessSampler> sampler;
  std::unique_ptr<RoundEngine> engine;
  int max_rounds = 0;
  bool decided = false;
  std::uint64_t slot_span = 0;
  std::uint64_t inst_span = 0;  ///< current attempt's instance span
  PackedLinkMatrix fates;
};

ReplicatedLog::ReplicatedLog(
    ReplicatedLogConfig cfg,
    std::vector<std::unique_ptr<StateMachine>> machines,
    SlotEnvFactory env_of)
    : cfg_(cfg), machines_(std::move(machines)), env_of_(std::move(env_of)) {
  TM_CHECK(static_cast<int>(machines_.size()) == cfg_.n,
           "one state machine per replica");
  TM_CHECK(cfg_.n > 1, "replication needs n > 1");
  for (const auto& m : machines_) TM_CHECK(m != nullptr, "null machine");
  TM_CHECK(cfg_.pipeline >= 1, "pipeline must be >= 1");
  TM_CHECK(cfg_.batch >= 1, "batch must be >= 1");
  TM_CHECK(cfg_.flush_ticks >= 1, "flush_ticks must be >= 1");
  TM_CHECK(cfg_.max_attempts_per_slot >= 1, "need at least one attempt");
  TM_CHECK(env_of_ != nullptr, "slot env factory required");
  applied_.assign(machines_.size(), 0);
  last_applied_.assign(machines_.size(), true);
}

ReplicatedLog::~ReplicatedLog() = default;

void ReplicatedLog::submit(Command cmd, std::uint64_t op_span) {
  const bool sp_on = cfg_.spans != nullptr && cfg_.spans->enabled();
  if (open_.empty()) {
    // Batches seal in FIFO order, so the batch opened now IS the next
    // slot ordinal — which lets the batch span carry its slot id from
    // the very first submit.
    open_slot_ = next_slot_++;
    open_since_ = tick_;
    if (sp_on) {
      cfg_.spans->begin(make_span_id(span_kind::kBatch,
                                     static_cast<std::uint64_t>(open_slot_)),
                        0, span_kind::kBatch);
    }
  }
  if (sp_on && op_span != 0) {
    cfg_.spans->cause(make_span_id(span_kind::kBatch,
                                   static_cast<std::uint64_t>(open_slot_)),
                      op_span, span_kind::kBatch);
  }
  LogOp op;
  op.cmd = cmd;
  op.submit_tick = tick_;
  op.op_span = op_span;
  open_.push_back(op);
  if (static_cast<int>(open_.size()) >= cfg_.batch) seal_open_batch();
}

void ReplicatedLog::seal_open_batch() {
  TM_CHECK(!open_.empty(), "sealing an empty batch");
  const bool sp_on = cfg_.spans != nullptr && cfg_.spans->enabled();
  SlotRecord rec;
  rec.slot = open_slot_;
  rec.sealed_tick = tick_;
  rec.ops = std::move(open_);
  open_.clear();
  open_slot_ = -1;
  if (sp_on) {
    const std::uint64_t batch_span = make_span_id(
        span_kind::kBatch, static_cast<std::uint64_t>(rec.slot));
    cfg_.spans->end(batch_span, span_kind::kBatch);
    cfg_.spans->begin(make_span_id(span_kind::kSlot,
                                   static_cast<std::uint64_t>(rec.slot)),
                      batch_span, span_kind::kSlot);
  }
  sealed_.push_back(std::move(rec));
}

void ReplicatedLog::start_attempt(Flight& f) {
  SlotEnv env = env_of_(f.rec.slot, f.attempt);
  TM_CHECK(env.sampler != nullptr, "slot env needs a sampler");
  TM_CHECK(env.sampler->n() == cfg_.n, "slot env sampler n mismatch");
  f.sampler = std::move(env.sampler);
  f.max_rounds =
      env.max_rounds < 0 ? cfg_.max_rounds_per_instance : env.max_rounds;
  // Pre-size the fate matrix: not every sampler's packed overload
  // auto-resizes (the latency testbeds write into the given shape).
  if (f.fates.n() != cfg_.n) f.fates = PackedLinkMatrix(cfg_.n);

  const Value decree = slot_decree(f.rec.slot);
  std::vector<std::unique_ptr<Protocol>> group;
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    group.push_back(make_smr_protocol(cfg_.algorithm, i, cfg_.n, decree,
                                      cfg_.use_election));
  }
  std::shared_ptr<Oracle> oracle;
  if (!cfg_.use_election) {
    oracle = std::make_shared<DesignatedOracle>(cfg_.leader);
  }
  f.engine = std::make_unique<RoundEngine>(std::move(group), oracle);

  const int ordinal = instances_run_++;
  const bool sp_on = cfg_.spans != nullptr && cfg_.spans->enabled();
  if (sp_on) {
    f.inst_span = make_span_id(span_kind::kInstance,
                               static_cast<std::uint64_t>(ordinal));
    cfg_.spans->begin(f.inst_span, f.slot_span, span_kind::kInstance);
    f.engine->set_span_tracer(cfg_.spans, f.inst_span,
                              static_cast<std::uint32_t>(ordinal));
  }
  if (!env.crash_rounds.empty()) {
    TM_CHECK(static_cast<int>(env.crash_rounds.size()) == cfg_.n,
             "one crash entry per replica");
    for (ProcessId i = 0; i < cfg_.n; ++i) {
      const Round at = env.crash_rounds[static_cast<std::size_t>(i)];
      if (at > 0) f.engine->crash_at(i, at);
    }
  }
}

void ReplicatedLog::start_ready_slots() {
  const bool sp_on = cfg_.spans != nullptr && cfg_.spans->enabled();
  while (!sealed_.empty() &&
         static_cast<int>(flight_.size()) < cfg_.pipeline) {
    auto f = std::make_unique<Flight>();
    f->rec = std::move(sealed_.front());
    sealed_.pop_front();
    if (sp_on) {
      f->slot_span = make_span_id(span_kind::kSlot,
                                  static_cast<std::uint64_t>(f->rec.slot));
    }
    start_attempt(*f);
    flight_.push_back(std::move(f));
  }
}

void ReplicatedLog::step_flights() {
  const bool sp_on = cfg_.spans != nullptr && cfg_.spans->enabled();
  for (auto& fp : flight_) {
    Flight& f = *fp;
    if (f.decided) continue;  // waiting behind the commit index
    f.sampler->sample_round(f.engine->current_round() + 1, f.fates);
    f.engine->step(f.fates);
    if (f.engine->all_alive_decided()) {
      f.decided = true;
      f.rec.decided_tick = tick_;
      f.rec.rounds = f.engine->current_round();
      f.rec.attempts = f.attempt + 1;
      const Value agreed = smr_agreed_decision(*f.engine);
      TM_CHECK(agreed == slot_decree(f.rec.slot),
               "slot decided a value nobody proposed");
      f.rec.applied.assign(static_cast<std::size_t>(cfg_.n), false);
      for (ProcessId i = 0; i < cfg_.n; ++i) {
        f.rec.applied[static_cast<std::size_t>(i)] = f.engine->alive(i);
      }
      if (sp_on) {
        cfg_.spans->cause(f.slot_span, f.inst_span, span_kind::kSlot);
        cfg_.spans->end(f.inst_span, span_kind::kInstance);
      }
    } else if (f.engine->current_round() >= f.max_rounds) {
      // Attempt exhausted: end its instance span and retry with a fresh
      // environment, or abandon the slot after the attempt budget.
      if (sp_on) {
        cfg_.spans->end(f.inst_span, span_kind::kInstance);
      }
      if (f.attempt + 1 >= cfg_.max_attempts_per_slot) {
        f.decided = true;  // resolves (unsuccessfully) at the commit scan
        f.rec.attempts = f.attempt + 1;
        f.rec.rounds = f.engine->current_round();
        f.rec.applied.clear();
      } else {
        ++f.attempt;
        start_attempt(f);
      }
    }
  }
}

void ReplicatedLog::commit_in_order() {
  const bool sp_on = cfg_.spans != nullptr && cfg_.spans->enabled();
  while (!flight_.empty() && flight_.front()->decided) {
    Flight& f = *flight_.front();
    SlotRecord rec = std::move(f.rec);
    TM_CHECK(rec.slot == commit_index_, "slots must commit in order");
    const bool committed = !rec.applied.empty();
    rec.committed = committed;
    rec.committed_tick = tick_;
    if (committed) {
      if (sp_on) {
        cfg_.spans->begin(make_span_id(span_kind::kApply,
                                       static_cast<std::uint64_t>(rec.slot)),
                          f.slot_span, span_kind::kApply);
      }
      for (const LogOp& op : rec.ops) log_.push_back(op.cmd);
      for (ProcessId i = 0; i < cfg_.n; ++i) {
        if (!rec.applied[static_cast<std::size_t>(i)]) continue;
        // Log replay on recovery: a replica crashed for earlier slots
        // catches up on the whole suffix before this slot's commands.
        std::size_t& upto = applied_[static_cast<std::size_t>(i)];
        while (upto < log_.size()) {
          machines_[static_cast<std::size_t>(i)]->apply(log_[upto]);
          ++upto;
        }
      }
      last_applied_ = rec.applied;
      ++slots_committed_;
      if (sp_on) {
        cfg_.spans->end(make_span_id(span_kind::kApply,
                                     static_cast<std::uint64_t>(rec.slot)),
                        span_kind::kApply);
      }
    } else {
      ++slots_abandoned_;
    }
    if (sp_on) cfg_.spans->end(f.slot_span, span_kind::kSlot);
    committed_.push_back(std::move(rec));
    flight_.pop_front();
    ++commit_index_;
  }
}

void ReplicatedLog::tick() {
  ++tick_;
  // Flush deadline: a non-empty open batch that has waited flush_ticks
  // ticks seals now even though it never filled.
  if (!open_.empty() && tick_ - open_since_ >= cfg_.flush_ticks) {
    seal_open_batch();
  }
  start_ready_slots();
  step_flights();
  commit_in_order();
  // Commits freed pipeline room; let sealed batches start this tick so
  // pipeline=1 still makes one round of progress per tick.
  start_ready_slots();
}

std::vector<SlotRecord> ReplicatedLog::take_committed() {
  std::vector<SlotRecord> out = std::move(committed_);
  committed_.clear();
  return out;
}

bool ReplicatedLog::consistent() const {
  return consistent_among(std::vector<bool>(machines_.size(), true));
}

bool ReplicatedLog::consistent_among(const std::vector<bool>& include) const {
  std::uint64_t reference = 0;
  bool have_reference = false;
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    if (!include[i]) continue;
    const std::uint64_t f = machines_[i]->fingerprint();
    if (!have_reference) {
      reference = f;
      have_reference = true;
    } else if (f != reference) {
      return false;
    }
  }
  return true;
}

std::vector<bool> ReplicatedLog::alive_at_end() const {
  return last_applied_;
}

}  // namespace timing

#include "smr/smr.hpp"

#include <limits>

#include "common/check.hpp"
#include "giraf/engine.hpp"
#include "oracles/omega.hpp"
#include "oracles/omega_election.hpp"

namespace timing {

std::unique_ptr<Protocol> make_smr_protocol(AlgorithmKind kind,
                                            ProcessId self, int n,
                                            Command proposal,
                                            bool use_election) {
  // Proposals must be real values; noops are encoded as a reserved
  // command, which is a valid consensus value but must not collide with
  // kNoValue.
  static_assert(kNoopCommand != kNoValue);
  auto inner = make_protocol(kind, self, n, proposal);
  if (!use_election) return inner;
  return std::make_unique<OmegaElection>(self, n, std::move(inner));
}

Value smr_agreed_decision(const RoundEngine& engine) {
  Value agreed = kNoValue;
  for (ProcessId i = 0; i < engine.n(); ++i) {
    // Skip ANY undecided replica: reading decision() from an alive
    // replica that is still a round behind the deciders (or crashed
    // before deciding) would poison the agreement check with garbage.
    if (!engine.process(i).has_decided()) continue;
    const Value d = engine.process(i).decision();
    if (agreed == kNoValue) agreed = d;
    TM_CHECK(d == agreed,
             "consensus violated agreement");  // hard stop: data corruption
  }
  TM_CHECK(agreed != kNoValue, "no replica decided");
  return agreed;
}

Round smr_first_round(int inst, Round instance_round_stride) {
  const std::int64_t first =
      1 + static_cast<std::int64_t>(inst) *
              static_cast<std::int64_t>(instance_round_stride);
  TM_CHECK(first >= 1 &&
               first <= std::numeric_limits<Round>::max() -
                            static_cast<std::int64_t>(instance_round_stride),
           "instance round range overflows Round");
  return static_cast<Round>(first);
}

SmrGroup::SmrGroup(SmrGroupConfig cfg,
                   std::vector<std::unique_ptr<StateMachine>> machines)
    : cfg_(cfg), machines_(std::move(machines)) {
  TM_CHECK(static_cast<int>(machines_.size()) == cfg_.n,
           "one state machine per replica");
  TM_CHECK(cfg_.n > 1, "replication needs n > 1");
  for (const auto& m : machines_) TM_CHECK(m != nullptr, "null machine");
  applied_.assign(machines_.size(), 0);
}

SmrInstanceResult SmrGroup::run_instance(
    const std::vector<Command>& proposals, TimelinessSampler& network,
    const std::vector<Round>* crash_rounds, int max_rounds) {
  TM_CHECK(static_cast<int>(proposals.size()) == cfg_.n,
           "one proposal per replica");
  std::vector<std::unique_ptr<Protocol>> group;
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    group.push_back(make_smr_protocol(cfg_.algorithm, i, cfg_.n,
                                      proposals[static_cast<std::size_t>(i)],
                                      cfg_.use_election));
  }
  std::shared_ptr<Oracle> oracle;
  if (!cfg_.use_election) {
    oracle = std::make_shared<DesignatedOracle>(cfg_.leader);
  }
  const int ordinal = instances_run_++;
  const bool sp_on = spans_ != nullptr && spans_->enabled();
  const std::uint64_t inst_span =
      sp_on ? make_span_id(span_kind::kInstance,
                           static_cast<std::uint64_t>(ordinal))
            : 0;
  if (sp_on) spans_->begin(inst_span, 0, span_kind::kInstance);

  RoundEngine engine(std::move(group), oracle);
  if (sp_on) {
    engine.set_span_tracer(spans_, inst_span,
                           static_cast<std::uint32_t>(ordinal));
  }
  if (crash_rounds != nullptr) {
    TM_CHECK(static_cast<int>(crash_rounds->size()) == cfg_.n,
             "one crash entry per replica");
    for (ProcessId i = 0; i < cfg_.n; ++i) {
      const Round at = (*crash_rounds)[static_cast<std::size_t>(i)];
      if (at > 0) engine.crash_at(i, at);
    }
  }
  const Round decided = engine.run(
      network, max_rounds < 0 ? cfg_.max_rounds_per_instance : max_rounds);

  SmrInstanceResult result;
  result.rounds = engine.current_round();
  if (decided < 0) {
    if (sp_on) spans_->end(inst_span, span_kind::kInstance);
    return result;  // nothing applied anywhere
  }

  result.decided = true;
  const Value agreed = smr_agreed_decision(engine);
  result.command = agreed;
  log_.push_back(agreed);
  const std::uint64_t apply_span =
      sp_on ? make_span_id(span_kind::kApply,
                           static_cast<std::uint64_t>(ordinal))
            : 0;
  if (sp_on) spans_->begin(apply_span, inst_span, span_kind::kApply);
  result.applied.assign(static_cast<std::size_t>(cfg_.n), false);
  for (ProcessId i = 0; i < cfg_.n; ++i) {
    if (!engine.alive(i)) continue;  // crashed: replays when it recovers
    // Log replay on recovery: a replica that missed decisions while
    // crashed catches up on the whole suffix before the new command.
    std::size_t& upto = applied_[static_cast<std::size_t>(i)];
    while (upto < log_.size()) {
      machines_[static_cast<std::size_t>(i)]->apply(log_[upto]);
      ++upto;
    }
    result.applied[static_cast<std::size_t>(i)] = true;
  }
  if (sp_on) {
    spans_->end(apply_span, span_kind::kApply);
    spans_->end(inst_span, span_kind::kInstance);
  }
  ++instances_decided_;
  return result;
}

bool SmrGroup::consistent() const {
  return consistent_among(std::vector<bool>(machines_.size(), true));
}

bool SmrGroup::consistent_among(const std::vector<bool>& include) const {
  std::uint64_t reference = 0;
  bool have_reference = false;
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    if (!include[i]) continue;
    const std::uint64_t f = machines_[i]->fingerprint();
    if (!have_reference) {
      reference = f;
      have_reference = true;
    } else if (f != reference) {
      return false;
    }
  }
  return true;
}

SmrNode::SmrNode(SmrNodeConfig cfg, Transport& transport,
                 std::unique_ptr<StateMachine> machine)
    : cfg_(cfg), transport_(transport), machine_(std::move(machine)) {
  TM_CHECK(cfg_.n > 1, "replication needs n > 1");
  TM_CHECK(cfg_.self >= 0 && cfg_.self < cfg_.n, "self out of range");
  TM_CHECK(machine_ != nullptr, "state machine required");
  TM_CHECK(cfg_.instance_round_stride > cfg_.max_rounds_per_instance * 2,
           "instance round ranges would overlap");
}

std::vector<SmrNodeInstance> SmrNode::run(
    int instances, const std::function<Command(int)>& next_command) {
  std::vector<SmrNodeInstance> log;
  log.reserve(static_cast<std::size_t>(instances));
  SpanTracer* spans = cfg_.spans;
  const bool sp_on = spans != nullptr && spans->enabled();
  for (int inst = 0; inst < instances; ++inst) {
    const Command proposal = next_command(inst);
    auto protocol = make_smr_protocol(AlgorithmKind::kWlm, cfg_.self,
                                      cfg_.n, proposal, cfg_.use_election);
    DesignatedOracle designated(cfg_.leader);

    const std::uint64_t inst_span =
        sp_on ? make_span_id(span_kind::kInstance,
                             static_cast<std::uint64_t>(inst))
              : 0;
    if (sp_on) spans->begin(inst_span, 0, span_kind::kInstance);

    RoundSyncConfig rcfg;
    rcfg.timeout_ms = cfg_.timeout_ms;
    rcfg.max_rounds = cfg_.max_rounds_per_instance;
    rcfg.first_round = smr_first_round(inst, cfg_.instance_round_stride);
    rcfg.one_way_ms = cfg_.one_way_ms;
    rcfg.spans = spans;
    rcfg.parent_span = inst_span;
    RoundSyncRunner runner(*protocol,
                           cfg_.use_election ? nullptr : &designated,
                           transport_, cfg_.n, rcfg);
    const RoundSyncResult r = runner.run();

    SmrNodeInstance rec;
    rec.decided = r.decided;
    rec.decision_round = r.decision_round;
    rec.elapsed_ms = r.elapsed_ms;
    if (r.decided) {
      rec.command = protocol->decision();
      const std::uint64_t apply_span =
          sp_on ? make_span_id(span_kind::kApply,
                               static_cast<std::uint64_t>(inst))
                : 0;
      if (sp_on) spans->begin(apply_span, inst_span, span_kind::kApply);
      machine_->apply(rec.command);
      if (sp_on) spans->end(apply_span, span_kind::kApply);
    }
    if (sp_on) spans->end(inst_span, span_kind::kInstance);
    log.push_back(rec);
  }
  return log;
}

}  // namespace timing

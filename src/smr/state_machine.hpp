// State machines for replication - the application side of the paper's
// motivating use case ("Consensus is an important building block for
// achieving fault-tolerance using the state-machine paradigm [20]").
//
// Commands are consensus values (64-bit, totally ordered as the paper's
// Values must be). A state machine is deterministic: replicas that apply
// the same command sequence reach identical states, which the SMR tests
// verify via fingerprints.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "history/model.hpp"

namespace timing {

/// A replication command. kNoopCommand fills instances for which a
/// replica had nothing to propose.
using Command = Value;
inline constexpr Command kNoopCommand = 0;

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Apply the next decided command. Must be deterministic.
  virtual void apply(Command cmd) = 0;

  /// Order-sensitive digest of the current state; equal fingerprints <=>
  /// replicas are in sync (for the deterministic machines used here).
  virtual std::uint64_t fingerprint() const = 0;

  /// Human-readable state dump (examples, debugging).
  virtual std::string describe() const = 0;
};

/// Command encoding helpers for the KV machine: a command sets
/// key := argument, both 31-bit unsigned. The sign bit stays clear so
/// commands remain positive and distinct from kNoopCommand.
Command make_kv_command(std::uint32_t key, std::uint32_t argument) noexcept;
std::uint32_t kv_command_key(Command c) noexcept;
std::uint32_t kv_command_argument(Command c) noexcept;

/// A tiny replicated key-value store.
class KvStateMachine final : public StateMachine {
 public:
  void apply(Command cmd) override;
  std::uint64_t fingerprint() const override;
  std::string describe() const override;

  /// Lookup; returns false when the key was never set.
  bool get(std::uint32_t key, std::uint32_t& out) const;
  std::size_t size() const noexcept { return kv_.size(); }
  long long applied() const noexcept { return applied_; }

 private:
  std::map<std::uint32_t, std::uint32_t> kv_;
  long long applied_ = 0;
};

/// Command encoding for the register machine (the client-facing object
/// model of src/history/). Bit 62 tags register commands so they stay
/// disjoint from KV commands (which keep bit 62 clear) and from
/// kNoopCommand; the sign bit stays clear so commands remain valid
/// positive consensus values.
///
///   bit  62      register tag (1)
///   bits 60..61  func (op_func:: constant, 2 bits)
///   bits 48..59  rid — per-client request id (12 bits)
///   bits 40..47  client id (8 bits)
///   bits 32..39  key (8 bits)
///   bits 16..31  a — write value / cas expected / append value (16 bits)
///   bits  0..15  b — cas replacement (16 bits)
Command make_register_command(std::uint8_t func, int rid, ProcessId client,
                              std::int32_t key, std::uint16_t a,
                              std::uint16_t b) noexcept;
bool is_register_command(Command c) noexcept;
std::uint8_t reg_command_func(Command c) noexcept;
int reg_command_rid(Command c) noexcept;
ProcessId reg_command_client(Command c) noexcept;
std::int32_t reg_command_key(Command c) noexcept;
Value reg_command_a(Command c) noexcept;
Value reg_command_b(Command c) noexcept;

/// The linearizability harness's replicated object: a set of registers
/// (keyed, initial value kRegInitial) stepped by history/model.hpp's
/// register_step — the SAME sequential spec the checker replays, so
/// "op events match machine effects" is a meaningful assertion.
///
/// Client sessions provide idempotent re-submission: a command whose
/// (client, rid) equals the client's last applied request is a duplicate
/// and is NOT re-applied (its cached result is retained), mirroring the
/// dedup a real SMR service performs when a client retries after a
/// timeout.
class RegisterStateMachine final : public StateMachine {
 public:
  void apply(Command cmd) override;
  std::uint64_t fingerprint() const override;
  std::string describe() const override;

  /// Current register value; kRegInitial when never touched.
  Value value(std::int32_t key) const;
  /// Result of the client's last applied request; false if the client
  /// never had a request applied.
  bool last_result(ProcessId client, Value& out) const;

  long long applied() const noexcept { return applied_; }
  /// Non-noop, non-duplicate applies.
  long long effective() const noexcept { return effective_; }

 private:
  std::map<std::int32_t, Value> regs_;
  /// client -> (rid, result) of the last applied request.
  std::map<ProcessId, std::pair<int, Value>> sessions_;
  long long applied_ = 0;
  long long effective_ = 0;
};

/// An append-only register machine recording every command (useful for
/// asserting exact command sequences in tests).
class JournalStateMachine final : public StateMachine {
 public:
  void apply(Command cmd) override { journal_.push_back(cmd); }
  std::uint64_t fingerprint() const override;
  std::string describe() const override;
  const std::vector<Command>& journal() const noexcept { return journal_; }

 private:
  std::vector<Command> journal_;
};

}  // namespace timing

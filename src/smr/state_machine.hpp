// State machines for replication - the application side of the paper's
// motivating use case ("Consensus is an important building block for
// achieving fault-tolerance using the state-machine paradigm [20]").
//
// Commands are consensus values (64-bit, totally ordered as the paper's
// Values must be). A state machine is deterministic: replicas that apply
// the same command sequence reach identical states, which the SMR tests
// verify via fingerprints.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace timing {

/// A replication command. kNoopCommand fills instances for which a
/// replica had nothing to propose.
using Command = Value;
inline constexpr Command kNoopCommand = 0;

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Apply the next decided command. Must be deterministic.
  virtual void apply(Command cmd) = 0;

  /// Order-sensitive digest of the current state; equal fingerprints <=>
  /// replicas are in sync (for the deterministic machines used here).
  virtual std::uint64_t fingerprint() const = 0;

  /// Human-readable state dump (examples, debugging).
  virtual std::string describe() const = 0;
};

/// Command encoding helpers for the KV machine: a command sets
/// key := argument, both 31-bit unsigned. The sign bit stays clear so
/// commands remain positive and distinct from kNoopCommand.
Command make_kv_command(std::uint32_t key, std::uint32_t argument) noexcept;
std::uint32_t kv_command_key(Command c) noexcept;
std::uint32_t kv_command_argument(Command c) noexcept;

/// A tiny replicated key-value store.
class KvStateMachine final : public StateMachine {
 public:
  void apply(Command cmd) override;
  std::uint64_t fingerprint() const override;
  std::string describe() const override;

  /// Lookup; returns false when the key was never set.
  bool get(std::uint32_t key, std::uint32_t& out) const;
  std::size_t size() const noexcept { return kv_.size(); }
  long long applied() const noexcept { return applied_; }

 private:
  std::map<std::uint32_t, std::uint32_t> kv_;
  long long applied_ = 0;
};

/// An append-only register machine recording every command (useful for
/// asserting exact command sequences in tests).
class JournalStateMachine final : public StateMachine {
 public:
  void apply(Command cmd) override { journal_.push_back(cmd); }
  std::uint64_t fingerprint() const override;
  std::string describe() const override;
  const std::vector<Command>& journal() const noexcept { return journal_; }

 private:
  std::vector<Command> journal_;
};

}  // namespace timing

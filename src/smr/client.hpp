// Client harness for the linearizability experiments (docs/HISTORY.md):
// a population of closed-loop clients driving register/append operations
// through an engine-based SmrGroup, recording the invoke/ok/fail/info
// history that src/history/ checks.
//
// Completion semantics (the soundness contract the checker relies on):
//  * ok   — the client's command was the instance's decided value; the
//           observed result is read back from a replica that applied it.
//  * fail — the command was proposed into a decided instance and LOST.
//           In this closed-world harness a losing command is provably
//           never applied (only decided commands are applied, and the
//           client never re-proposes a completed op), so `fail` is sound.
//  * info — the op timed out (its instances never decided) or was still
//           open when the trial ended; it may or may not have taken
//           effect as far as the client knows, so the checker treats it
//           as concurrent forever.
//
// After the main (fault-injected) phase, fresh probe clients read every
// key over fault-free instances, anchoring the final state in the
// history — this is what makes lost updates on append keys visible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "consensus/factory.hpp"
#include "obs/span.hpp"
#include "obs/trace_event.hpp"
#include "sim/sampler.hpp"
#include "smr/replicated_log.hpp"

namespace timing {

/// Test-only corruption hooks: deliberately violate linearizability so
/// the chaos gate can prove the checker catches real violations.
enum class CorruptMode {
  kNone = 0,
  /// The first probe read that would observe a non-initial register
  /// value reports kRegInitial instead — a stale read that misses every
  /// committed update.
  kStaleRead,
  /// The first append proposal is silently replaced by a noop; when its
  /// instance decides, the append is reported ok anyway — an
  /// acknowledged lost update, exposed by the probe read of the key.
  kLostUpdate,
};

const char* to_string(CorruptMode m) noexcept;
/// Parses "none" / "stale" / "lost"; returns false on anything else.
bool corrupt_mode_from_string(const char* s, CorruptMode& out) noexcept;

struct SmrClientConfig {
  int n = 5;
  AlgorithmKind algorithm = AlgorithmKind::kWlm;
  ProcessId leader = 0;
  int clients = 4;      ///< closed-loop clients (ids 0..clients-1)
  int reg_keys = 2;     ///< keys 0..reg_keys-1: read/write/cas registers
  int append_keys = 1;  ///< keys reg_keys..: read/append hash-chain keys
  int instances = 8;    ///< main-phase consensus instances
  /// Instances an op may sit open across before it is closed as info.
  int op_timeout_instances = 3;
  /// Fault-free instances each probe read may retry across.
  int probe_attempts = 4;
  std::uint64_t seed = 1;
  CorruptMode corrupt = CorruptMode::kNone;
  /// Optional span tracer (not owned). Every op becomes an `op` span
  /// keyed (client, rid) with `queue` (invoke -> first proposal) and
  /// `commit` (first proposal -> completion) children; each commit span
  /// is cause-annotated with every consensus instance the op was
  /// proposed into. Instance/round spans come from the group.
  SpanTracer* spans = nullptr;
  /// Optional latency registry (not owned). With a TIMED tracer, every
  /// ok op's invoke->completion reading goes into
  /// metrics->latency("op.commit_ns") and every first-proposal wait into
  /// "op.queue_ns", using the very timestamps the span events carry —
  /// so an offline rebuild from the trace matches this registry exactly.
  MetricsRegistry* metrics = nullptr;
};

/// Network environment for one consensus instance. The factory keeps the
/// harness free of any fault/model dependency: the caller decides what
/// the network does (random_fault_plan injection for the chaos gate,
/// fault-free samplers for the probe phase).
struct InstanceEnv {
  std::unique_ptr<TimelinessSampler> sampler;
  std::vector<Round> crash_rounds;  ///< empty = no crashes
  int max_rounds = -1;              ///< -1 = the group default
};

/// Called with the running instance index: 0..cfg.instances-1 are the
/// main phase; every index >= cfg.instances is a probe-phase instance
/// and should be fault-free.
using InstanceEnvFactory = std::function<InstanceEnv(int index)>;

struct SmrClientReport {
  std::vector<TraceEvent> events;  ///< the op history, ts order
  int instances_run = 0;
  int instances_decided = 0;
  int ops_ok = 0;
  int ops_fail = 0;
  int ops_info = 0;  ///< timed out or open at end of trial
  /// Fingerprint agreement among the replicas that applied the full log.
  bool consistent = true;
  /// Final value per key (0..reg_keys+append_keys-1) read from a replica
  /// that applied the full decided log.
  std::vector<Value> final_values;
};

SmrClientReport run_smr_clients(const SmrClientConfig& cfg,
                                const InstanceEnvFactory& env_of);

/// Pipelined/batched variant of the harness: the same closed-loop
/// clients and op mix, driven through a ReplicatedLog instead of one
/// serialized instance at a time. Instances overlap and ops batch, so
/// the completion semantics shift slightly:
///  * ok   — the op's slot committed; the result is read back from a
///           replica that applied it (session-deduplicated).
///  * fail — the op's slot was abandoned after max_attempts_per_slot;
///           abandoned slots are never applied, so fail stays sound.
///  * info — the op out-waited op_timeout_ticks, or was still open when
///           the trial ended. Its slot MAY still commit afterwards (the
///           batch already holds the command), which is exactly the
///           "unknown, concurrent forever" reading the checker gives
///           info ops.
struct SmrPipelineConfig {
  int pipeline = 8;
  int batch = 4;
  int flush_ticks = 2;            ///< seal a waiting batch after this
  int ticks = 24;                 ///< main-phase submission ticks
  int op_timeout_ticks = 40;      ///< open ticks before an op goes info
  int max_attempts_per_slot = 8;
  int drain_ticks = 2000;  ///< tick budget after submission stops
  /// Invoked once, after the main phase fully drains and before the
  /// probe reads are submitted. The caller's SlotEnvFactory sees only
  /// (slot, attempt); this hook lets its closure flip to fault-free
  /// environments for every probe-phase slot.
  std::function<void()> on_probe_start;
};

SmrClientReport run_pipelined_smr_clients(const SmrClientConfig& cfg,
                                          const SmrPipelineConfig& pcfg,
                                          const SlotEnvFactory& env_of);

}  // namespace timing

// Pipelined, batched multi-decree replication (ROADMAP open item 1):
// the throughput-shaped form of src/smr/. Where SmrGroup runs one
// consensus instance to completion before starting the next,
// ReplicatedLog keeps up to `pipeline` instances in flight on one
// shared tick timeline — every tick() advances EVERY in-flight
// instance's engine by exactly one round — and packs up to `batch`
// pending commands into a single decree per log slot (with a flush
// deadline so a trickle of traffic still commits).
//
// The decree a slot's replicas propose is not the commands themselves
// (a batch does not fit the 64-bit value domain) but a slot-tagged
// ordinal every replica derives identically; validity then pins the
// decided value to that ordinal, and the batch's commands are applied
// from the slot's own record. Slots may DECIDE out of order — a later
// slot's instance can finish while an earlier one retries — but they
// COMMIT strictly in slot order behind a gap-aware commit index, so
// every replica applies the same command sequence (the same
// log-replay-on-recovery bookkeeping as SmrGroup).
//
// This is the engine-based analogue of Nerio-style edict ordering: one
// stable leader drives many overlapped decrees, and the paper's
// stable-leader observation ("the same leader may persist for numerous
// instances of consensus") is what makes the pipeline's steady state
// cheap.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "consensus/factory.hpp"
#include "giraf/engine.hpp"
#include "obs/span.hpp"
#include "sim/sampler.hpp"
#include "smr/state_machine.hpp"

namespace timing {

struct ReplicatedLogConfig {
  int n = 5;
  AlgorithmKind algorithm = AlgorithmKind::kWlm;
  ProcessId leader = 0;       ///< designated leader (ignored with election)
  bool use_election = false;  ///< wrap protocols in OmegaElection
  int pipeline = 8;           ///< max consensus instances in flight
  int batch = 4;              ///< max commands per decree
  /// A non-empty open batch is sealed after waiting this many ticks even
  /// if it never fills (the flush deadline).
  int flush_ticks = 2;
  int max_rounds_per_instance = 500;
  /// Attempts per slot before the slot's commands are abandoned (each
  /// attempt gets a fresh environment from the factory).
  int max_attempts_per_slot = 8;
  /// Optional span tracer (not owned). Each batch becomes a `batch` span
  /// with a cause edge from every submitted op span; each slot a `slot`
  /// span (child of its batch) with per-attempt `instance` children and
  /// a slot<-instance cause edge at decision; applies get `apply` spans.
  SpanTracer* spans = nullptr;
};

/// Network environment for one attempt of one slot's consensus instance.
/// Mirrors smr/client.hpp's InstanceEnv: the caller decides what the
/// network does per (slot, attempt).
struct SlotEnv {
  std::unique_ptr<TimelinessSampler> sampler;
  std::vector<Round> crash_rounds;  ///< empty = no crashes
  int max_rounds = -1;              ///< -1 = the config default
};

using SlotEnvFactory = std::function<SlotEnv(int slot, int attempt)>;

/// One command riding a slot, as the caller submitted it.
struct LogOp {
  Command cmd = kNoopCommand;
  long long submit_tick = 0;  ///< tick() count when submitted
  std::uint64_t op_span = 0;  ///< caller's op span id (0 = none)
};

/// A committed (or abandoned) slot, in commit order.
struct SlotRecord {
  int slot = 0;
  bool committed = false;     ///< false = abandoned after max attempts
  int attempts = 1;           ///< consensus attempts the slot took
  Round rounds = 0;           ///< rounds of the final attempt
  long long sealed_tick = 0;  ///< when the batch was sealed into the slot
  long long decided_tick = 0; ///< when the deciding attempt finished
  long long committed_tick = 0;  ///< when the slot applied (in log order)
  std::vector<LogOp> ops;
  /// Which replicas applied this slot's commands (alive at decision plus
  /// any replayed suffix). Empty when abandoned.
  std::vector<bool> applied;
};

class ReplicatedLog {
 public:
  /// One state machine per replica (machines.size() == cfg.n).
  ReplicatedLog(ReplicatedLogConfig cfg,
                std::vector<std::unique_ptr<StateMachine>> machines,
                SlotEnvFactory env_of);
  ~ReplicatedLog();  // out of line: Flight is incomplete here

  /// Queue a command into the open batch. Sealing happens on fullness
  /// (immediately) or at the flush deadline (next tick); the slot starts
  /// once the pipeline has room. `op_span` annotates the batch span.
  void submit(Command cmd, std::uint64_t op_span = 0);

  /// Advance virtual time by one tick: seal an expired open batch, start
  /// sealed slots while the pipeline has room, step every in-flight
  /// instance one round, and commit decided slots in log order.
  void tick();

  /// True when nothing is submitted, sealed or in flight — every
  /// accepted command has committed (or been abandoned).
  bool drained() const noexcept {
    return open_.empty() && sealed_.empty() && flight_.empty();
  }

  long long now() const noexcept { return tick_; }
  int slots_started() const noexcept { return next_slot_; }
  int slots_committed() const noexcept { return slots_committed_; }
  int slots_abandoned() const noexcept { return slots_abandoned_; }
  /// Instances in flight right now (<= cfg.pipeline).
  int in_flight() const noexcept { return static_cast<int>(flight_.size()); }

  /// Committed/abandoned slot records accumulated since the last call,
  /// in commit order (the caller drains them between ticks).
  std::vector<SlotRecord> take_committed();

  /// The flattened decided command log (every committed slot's ops, in
  /// commit order).
  const std::vector<Command>& log() const noexcept { return log_; }
  const StateMachine& machine(ProcessId i) const { return *machines_[i]; }

  /// True iff all replicas' fingerprints agree. A replica that was
  /// crashed at its last slot's decision is legitimately BEHIND, not
  /// divergent — use consistent_among(alive_at_end()) for runs that end
  /// with crashed replicas.
  bool consistent() const;
  bool consistent_among(const std::vector<bool>& include) const;
  /// Which replicas applied the full log at the last committed slot
  /// (all true before anything committed).
  std::vector<bool> alive_at_end() const;

 private:
  struct Flight;  // one in-flight slot (engine + env + bookkeeping)

  void seal_open_batch();
  void start_ready_slots();
  void start_attempt(Flight& f);
  void step_flights();
  void commit_in_order();

  ReplicatedLogConfig cfg_;
  std::vector<std::unique_ptr<StateMachine>> machines_;
  SlotEnvFactory env_of_;
  long long tick_ = 0;

  std::vector<LogOp> open_;      ///< the open (unsealed) batch
  long long open_since_ = 0;     ///< tick of the open batch's first op
  int open_slot_ = -1;           ///< slot ordinal the open batch will get
  std::deque<SlotRecord> sealed_;    ///< sealed batches awaiting a pipeline slot
  std::deque<std::unique_ptr<Flight>> flight_;  ///< in flight, slot order

  std::vector<Command> log_;          ///< flattened committed commands
  std::vector<std::size_t> applied_;  ///< per replica: log prefix applied
  std::vector<bool> last_applied_;    ///< appliers of the last commit
  std::vector<SlotRecord> committed_; ///< drained by take_committed()
  int next_slot_ = 0;        ///< next slot ordinal (== batches opened)
  int commit_index_ = 0;     ///< lowest slot not yet committed/abandoned
  int slots_committed_ = 0;
  int slots_abandoned_ = 0;
  int instances_run_ = 0;    ///< instance span ordinal across attempts
};

/// The decree replicas propose for `slot`: a positive slot-tagged value
/// outside the command encodings (never applied to a state machine; the
/// slot's ops are). Exposed for tests.
Value slot_decree(int slot) noexcept;

}  // namespace timing

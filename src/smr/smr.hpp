// State-machine replication on top of the consensus library: a sequence
// of consensus instances, one per log slot, each deciding the command
// that every replica then applies.
//
// Two drivers:
//  * SmrGroup - deterministic, engine-based (lock-step rounds over a
//    TimelinessSampler): the form used by tests and simulation studies;
//  * SmrNode - deployment-shaped (one object per node over a Transport,
//    using the Section 5.1 round synchronization): the form used by the
//    examples and the UDP integration tests. Successive instances use
//    disjoint wire round ranges so packets of instance k can never
//    confuse instance k+1.
//
// The paper's stable-leader observation is what makes this practical:
// "the same leader may persist for numerous instances of consensus
// (possibly thousands)", so Algorithm 2's O(n) stable-state messaging is
// the steady-state cost of the whole replicated service.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "consensus/factory.hpp"
#include "net/transport.hpp"
#include "roundsync/roundsync.hpp"
#include "sim/sampler.hpp"
#include "smr/state_machine.hpp"

namespace timing {

class RoundEngine;

// ---------------------------------------------------------------------
// Shared building blocks (SmrGroup, SmrNode and ReplicatedLog).

/// A consensus protocol instance for one replica, optionally wrapped in
/// OmegaElection when the deployment elects its own leader.
std::unique_ptr<Protocol> make_smr_protocol(AlgorithmKind kind,
                                            ProcessId self, int n,
                                            Command proposal,
                                            bool use_election);

/// The value a decided engine agreed on. Scans every replica that HAS
/// decided — crashed or alive — and TM_CHECKs they all agree; replicas
/// that have not decided (crashed early, or alive but still a round
/// behind the deciders) are skipped, never read. At least one replica
/// must have decided.
Value smr_agreed_decision(const RoundEngine& engine);

/// First wire round of instance `inst` under a per-instance stride,
/// computed in 64 bits and TM_CHECKed to fit Round — at throughput-scale
/// instance counts the 32-bit product silently wrapped and violated the
/// no-overlap invariant.
Round smr_first_round(int inst, Round instance_round_stride);

// ---------------------------------------------------------------------
// Deterministic, engine-based replication.

struct SmrGroupConfig {
  int n = 5;
  AlgorithmKind algorithm = AlgorithmKind::kWlm;
  ProcessId leader = 0;       ///< designated leader (ignored with election)
  bool use_election = false;  ///< wrap protocols in OmegaElection
  int max_rounds_per_instance = 500;
};

struct SmrInstanceResult {
  bool decided = false;
  Value command = kNoValue;
  Round rounds = 0;  ///< rounds the instance ran
  /// Which replicas applied this instance's command (alive at decision,
  /// including any log suffix they replayed to catch up). Empty when
  /// undecided.
  std::vector<bool> applied;
};

class SmrGroup {
 public:
  /// One state machine per replica (machines.size() == cfg.n).
  SmrGroup(SmrGroupConfig cfg,
           std::vector<std::unique_ptr<StateMachine>> machines);

  /// Run one consensus instance over the given network; proposals[i] is
  /// replica i's pending command (use kNoopCommand when idle). On global
  /// decision every surviving replica applies the decided command.
  /// `crash_rounds` (optional, one entry per replica, 0 = never) injects
  /// crash failures; pass the same vector to the network's ScheduleConfig
  /// so the model's timeliness guarantees refer to correct processes.
  /// Crashed replicas' machines stop applying commands; a replica that is
  /// alive again in a later instance replays the decided-log suffix it
  /// missed before applying the new command (log replay on recovery), so
  /// surviving replicas never silently diverge. `max_rounds` < 0 uses
  /// cfg.max_rounds_per_instance.
  SmrInstanceResult run_instance(const std::vector<Command>& proposals,
                                 TimelinessSampler& network,
                                 const std::vector<Round>* crash_rounds =
                                     nullptr,
                                 int max_rounds = -1);

  /// The decided command log (one entry per decided instance, in order).
  const std::vector<Command>& log() const noexcept { return log_; }

  int instances_decided() const noexcept { return instances_decided_; }
  const StateMachine& machine(ProcessId i) const { return *machines_[i]; }

  /// Install a span tracer (null disables). Each run_instance call becomes
  /// an `instance` span (keyed by a monotone per-group ordinal) with the
  /// engine's `round` spans as children and an `apply` span around the
  /// log-application loop.
  void set_span_tracer(SpanTracer* spans) noexcept { spans_ = spans; }

  /// True iff all replicas' fingerprints agree.
  bool consistent() const;
  /// Consistency restricted to a subset (e.g. the survivors of a crash).
  bool consistent_among(const std::vector<bool>& include) const;

 private:
  SmrGroupConfig cfg_;
  std::vector<std::unique_ptr<StateMachine>> machines_;
  std::vector<Command> log_;          ///< decided commands, in order
  std::vector<std::size_t> applied_;  ///< per replica: log prefix applied
  int instances_decided_ = 0;
  SpanTracer* spans_ = nullptr;
  int instances_run_ = 0;  ///< span ordinal (counts undecided runs too)
};

// ---------------------------------------------------------------------
// Network replica (one per node, run concurrently).

struct SmrNodeConfig {
  int n = 0;
  ProcessId self = kNoProcess;
  double timeout_ms = 50.0;
  int max_rounds_per_instance = 500;
  ProcessId leader = 0;       ///< designated leader (ignored with election)
  bool use_election = false;
  std::vector<double> one_way_ms;  ///< L_i[j] for fast-forward (optional)
  /// Wire-round stride between instances; must exceed any instance's
  /// round count and be identical across replicas.
  Round instance_round_stride = 1 << 20;
  /// Optional span tracer (not owned; one per node). Each instance
  /// becomes an `instance` span; the round-sync runner hangs its `round`
  /// and `msg` spans beneath it, and applies get `apply` spans.
  SpanTracer* spans = nullptr;
};

struct SmrNodeInstance {
  bool decided = false;
  Value command = kNoValue;
  Round decision_round = -1;
  double elapsed_ms = 0.0;
};

class SmrNode {
 public:
  SmrNode(SmrNodeConfig cfg, Transport& transport,
          std::unique_ptr<StateMachine> machine);

  /// Runs `instances` consecutive consensus instances. next_command(i)
  /// supplies this node's proposal for instance i (return kNoopCommand
  /// when idle; a real command is required from at least one replica for
  /// the slot to be useful, but consensus itself does not care).
  std::vector<SmrNodeInstance> run(
      int instances, const std::function<Command(int)>& next_command);

  const StateMachine& machine() const { return *machine_; }

 private:
  SmrNodeConfig cfg_;
  Transport& transport_;
  std::unique_ptr<StateMachine> machine_;
};

}  // namespace timing

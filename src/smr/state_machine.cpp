#include "smr/state_machine.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace timing {

Command make_kv_command(std::uint32_t key, std::uint32_t argument) noexcept {
  return (static_cast<Command>(key & 0x7fffffffu) << 31) |
         static_cast<Command>(argument & 0x7fffffffu);
}

std::uint32_t kv_command_key(Command c) noexcept {
  return static_cast<std::uint32_t>((static_cast<std::uint64_t>(c) >> 31) &
                                    0x7fffffffu);
}

std::uint32_t kv_command_argument(Command c) noexcept {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(c) &
                                    0x7fffffffu);
}

void KvStateMachine::apply(Command cmd) {
  ++applied_;
  if (cmd == kNoopCommand) return;
  kv_[kv_command_key(cmd)] = kv_command_argument(cmd);
}

std::uint64_t KvStateMachine::fingerprint() const {
  std::uint64_t h = 0x243f6a8885a308d3ULL ^
                    static_cast<std::uint64_t>(applied_);
  for (const auto& [k, v] : kv_) {
    std::uint64_t x = (static_cast<std::uint64_t>(k) << 32) | v;
    x ^= h;
    h = splitmix64(x);
  }
  return h;
}

std::string KvStateMachine::describe() const {
  std::ostringstream os;
  os << "kv{";
  bool first = true;
  for (const auto& [k, v] : kv_) {
    os << (first ? "" : ", ") << k << "=" << v;
    first = false;
  }
  os << "} after " << applied_ << " commands";
  return os.str();
}

bool KvStateMachine::get(std::uint32_t key, std::uint32_t& out) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return false;
  out = it->second;
  return true;
}

Command make_register_command(std::uint8_t func, int rid, ProcessId client,
                              std::int32_t key, std::uint16_t a,
                              std::uint16_t b) noexcept {
  return static_cast<Command>(
      (1ull << 62) |
      (static_cast<std::uint64_t>(func & 0x3u) << 60) |
      (static_cast<std::uint64_t>(rid & 0xfff) << 48) |
      (static_cast<std::uint64_t>(client & 0xff) << 40) |
      (static_cast<std::uint64_t>(key & 0xff) << 32) |
      (static_cast<std::uint64_t>(a) << 16) | static_cast<std::uint64_t>(b));
}

bool is_register_command(Command c) noexcept {
  return c > 0 && ((static_cast<std::uint64_t>(c) >> 62) & 1u) != 0;
}

std::uint8_t reg_command_func(Command c) noexcept {
  return static_cast<std::uint8_t>((static_cast<std::uint64_t>(c) >> 60) &
                                   0x3u);
}

int reg_command_rid(Command c) noexcept {
  return static_cast<int>((static_cast<std::uint64_t>(c) >> 48) & 0xfffu);
}

ProcessId reg_command_client(Command c) noexcept {
  return static_cast<ProcessId>((static_cast<std::uint64_t>(c) >> 40) &
                                0xffu);
}

std::int32_t reg_command_key(Command c) noexcept {
  return static_cast<std::int32_t>((static_cast<std::uint64_t>(c) >> 32) &
                                   0xffu);
}

Value reg_command_a(Command c) noexcept {
  return static_cast<Value>((static_cast<std::uint64_t>(c) >> 16) & 0xffffu);
}

Value reg_command_b(Command c) noexcept {
  return static_cast<Value>(static_cast<std::uint64_t>(c) & 0xffffu);
}

void RegisterStateMachine::apply(Command cmd) {
  ++applied_;
  if (cmd == kNoopCommand) return;
  TM_CHECK(is_register_command(cmd), "non-register command on a register "
                                     "machine");
  const ProcessId client = reg_command_client(cmd);
  const int rid = reg_command_rid(cmd);
  const auto session = sessions_.find(client);
  if (session != sessions_.end() && session->second.first == rid) {
    return;  // duplicate re-submit: keep the cached result, no re-apply
  }
  const std::int32_t key = reg_command_key(cmd);
  const StepResult step =
      register_step(value(key), reg_command_func(cmd), reg_command_a(cmd),
                    reg_command_b(cmd));
  regs_[key] = step.state;
  sessions_[client] = {rid, step.result};
  ++effective_;
}

std::uint64_t RegisterStateMachine::fingerprint() const {
  std::uint64_t h = 0x13198a2e03707344ULL ^
                    static_cast<std::uint64_t>(applied_) ^
                    (static_cast<std::uint64_t>(effective_) << 32);
  for (const auto& [k, v] : regs_) {
    std::uint64_t x = static_cast<std::uint64_t>(k) ^
                      (static_cast<std::uint64_t>(v) << 8) ^ h;
    h = splitmix64(x);
  }
  for (const auto& [c, s] : sessions_) {
    std::uint64_t x = static_cast<std::uint64_t>(c) ^
                      (static_cast<std::uint64_t>(s.first) << 16) ^
                      (static_cast<std::uint64_t>(s.second) << 24) ^ h;
    h = splitmix64(x);
  }
  return h;
}

std::string RegisterStateMachine::describe() const {
  std::ostringstream os;
  os << "regs{";
  bool first = true;
  for (const auto& [k, v] : regs_) {
    os << (first ? "" : ", ") << k << "=" << v;
    first = false;
  }
  os << "} after " << applied_ << " commands (" << effective_
     << " effective)";
  return os.str();
}

Value RegisterStateMachine::value(std::int32_t key) const {
  const auto it = regs_.find(key);
  return it == regs_.end() ? kRegInitial : it->second;
}

bool RegisterStateMachine::last_result(ProcessId client, Value& out) const {
  const auto it = sessions_.find(client);
  if (it == sessions_.end()) return false;
  out = it->second.second;
  return true;
}

std::uint64_t JournalStateMachine::fingerprint() const {
  std::uint64_t h = 0x452821e638d01377ULL;
  for (Command c : journal_) {
    std::uint64_t x = static_cast<std::uint64_t>(c) ^ h;
    h = splitmix64(x);
  }
  return h;
}

std::string JournalStateMachine::describe() const {
  std::ostringstream os;
  os << "journal of " << journal_.size() << " commands";
  return os.str();
}

}  // namespace timing

#include "smr/state_machine.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace timing {

Command make_kv_command(std::uint32_t key, std::uint32_t argument) noexcept {
  return (static_cast<Command>(key & 0x7fffffffu) << 31) |
         static_cast<Command>(argument & 0x7fffffffu);
}

std::uint32_t kv_command_key(Command c) noexcept {
  return static_cast<std::uint32_t>((static_cast<std::uint64_t>(c) >> 31) &
                                    0x7fffffffu);
}

std::uint32_t kv_command_argument(Command c) noexcept {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(c) &
                                    0x7fffffffu);
}

void KvStateMachine::apply(Command cmd) {
  ++applied_;
  if (cmd == kNoopCommand) return;
  kv_[kv_command_key(cmd)] = kv_command_argument(cmd);
}

std::uint64_t KvStateMachine::fingerprint() const {
  std::uint64_t h = 0x243f6a8885a308d3ULL ^
                    static_cast<std::uint64_t>(applied_);
  for (const auto& [k, v] : kv_) {
    std::uint64_t x = (static_cast<std::uint64_t>(k) << 32) | v;
    x ^= h;
    h = splitmix64(x);
  }
  return h;
}

std::string KvStateMachine::describe() const {
  std::ostringstream os;
  os << "kv{";
  bool first = true;
  for (const auto& [k, v] : kv_) {
    os << (first ? "" : ", ") << k << "=" << v;
    first = false;
  }
  os << "} after " << applied_ << " commands";
  return os.str();
}

bool KvStateMachine::get(std::uint32_t key, std::uint32_t& out) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return false;
  out = it->second;
  return true;
}

std::uint64_t JournalStateMachine::fingerprint() const {
  std::uint64_t h = 0x452821e638d01377ULL;
  for (Command c : journal_) {
    std::uint64_t x = static_cast<std::uint64_t>(c) ^ h;
    h = splitmix64(x);
  }
  return h;
}

std::string JournalStateMachine::describe() const {
  std::ostringstream os;
  os << "journal of " << journal_.size() << " commands";
  return os.str();
}

}  // namespace timing

// The GIRAF protocol interface (Algorithm 1): a protocol is exactly a pair
// of functions, initialize() and compute(), both fed the oracle output,
// returning the next round's message and its destination set.
#pragma once

#include <memory>
#include <vector>

#include "giraf/message.hpp"
#include "obs/trace_sink.hpp"

namespace timing {

/// What a protocol returns from initialize()/compute(): the message for
/// the next round and the set D_i of destinations (Algorithm 1).
struct SendSpec {
  Message msg;
  /// Destinations; self is allowed in the list (the engine skips the
  /// network for it - a process always receives its own message).
  std::vector<ProcessId> dests;

  /// Convenience: D_i = Pi.
  static std::vector<ProcessId> all(int n) {
    std::vector<ProcessId> d(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) d[static_cast<std::size_t>(i)] = i;
    return d;
  }
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called at the first end-of-round event; returns the round-1 message.
  /// `leader_hint` is the oracle output (Omega's trusted leader for the
  /// leader-based protocols; ignored by ES/AFM protocols).
  virtual SendSpec initialize(ProcessId leader_hint) = 0;

  /// Called at the end of round k with the messages received in round k
  /// (received.size() == n, slot = sender); returns the round-(k+1)
  /// message.
  virtual SendSpec compute(Round k, const RoundMsgs& received,
                           ProcessId leader_hint) = 0;

  /// Consensus outputs.
  virtual bool has_decided() const noexcept = 0;
  virtual Value decision() const noexcept = 0;

  /// Introspection used by tests and the Paxos ablation; protocols expose
  /// their current timestamp/estimate where meaningful.
  virtual Timestamp current_ts() const noexcept { return 0; }
  virtual Value current_est() const noexcept { return kNoValue; }

  /// Deep copy of the protocol state, for state-space search (the
  /// exhaustive model-checking tests). Protocols that do not support it
  /// return nullptr (the default). Clones do not inherit the trace sink
  /// (search states are not observed runs).
  virtual std::unique_ptr<Protocol> clone() const { return nullptr; }

  /// Install a trace sink (null disables, the default). Virtual so
  /// wrappers (OmegaElection, LmOverWlm) can forward it to their inner
  /// protocol.
  virtual void set_trace_sink(TraceSink* sink) noexcept {
    trace_sink_ = sink;
  }

 protected:
  /// Decide-path instrumentation: protocols call this exactly where a
  /// decide rule fires (see obs/trace_event.hpp for the rule tags).
  void trace_decide(Round k, ProcessId self, Value v,
                    std::uint8_t rule) const {
    trace_emit(trace_sink_, TraceEvent::decide(k, self, v, rule));
  }

  TraceSink* trace_sink_ = nullptr;
};

}  // namespace timing

#include "giraf/message.hpp"

namespace timing {

const char* to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::kPrepare: return "PREPARE";
    case MsgType::kCommit: return "COMMIT";
    case MsgType::kDecide: return "DECIDE";
    case MsgType::kPaxosPrepare: return "PAXOS_PREPARE";
    case MsgType::kPaxosPromise: return "PAXOS_PROMISE";
    case MsgType::kPaxosNack: return "PAXOS_NACK";
    case MsgType::kPaxosAccept: return "PAXOS_ACCEPT";
    case MsgType::kPaxosAccepted: return "PAXOS_ACCEPTED";
    case MsgType::kPaxosIdle: return "PAXOS_IDLE";
    case MsgType::kRelay: return "RELAY";
  }
  return "?";
}

}  // namespace timing

// Failure-detector oracles. In GIRAF the oracle is queried by the
// environment at every end-of-round event; the Omega oracles used by the
// paper output a trusted leader.
#pragma once

#include "common/types.hpp"

namespace timing {

class Oracle {
 public:
  virtual ~Oracle() = default;

  /// Output of oracle_self(k): queried at the end of round k (k = 0 for
  /// the query preceding initialize()).
  virtual ProcessId query(ProcessId self, Round k) = 0;
};

}  // namespace timing

// The message universe shared by all protocols in this library.
//
// GIRAF (Algorithm 1) is agnostic to message contents; rather than
// templating the engine per protocol we use one tagged superset struct.
// Algorithm 2's format is <msgType, est, ts, leader, majApproved>
// (line 8); the other protocols add a few fields, the Appendix B
// simulation adds a relay payload, and Paxos adds ballot fields.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace timing {

enum class MsgType : std::uint8_t {
  kPrepare,
  kCommit,
  kDecide,
  // Paxos (baseline protocol):
  kPaxosPrepare,   ///< phase 1a, leader -> all
  kPaxosPromise,   ///< phase 1b, acceptor -> leader
  kPaxosNack,      ///< rejection carrying the acceptor's promised ballot
  kPaxosAccept,    ///< phase 2a, leader -> all
  kPaxosAccepted,  ///< phase 2b, acceptor -> leader
  kPaxosIdle,      ///< keep-alive when an acceptor has nothing to report
  // Appendix B simulation (Algorithm 3):
  kRelay,          ///< odd-round forwarding of the previous round's messages
};

const char* to_string(MsgType t) noexcept;

struct Message {
  MsgType type = MsgType::kPrepare;
  Value est = kNoValue;
  Timestamp ts = 0;
  ProcessId leader = kNoProcess;
  bool maj_approved = false;  ///< Algorithm 2's majApproved field
  bool heard_maj = false;     ///< LM3's "I heard a majority last round"

  // Paxos fields.
  Timestamp ballot = 0;
  Timestamp accepted_ballot = 0;
  Value accepted_value = kNoValue;

  // Omega election piggyback (oracles/omega_election.hpp): monotone
  // punishment counters, one per process, merged pointwise-max. Empty for
  // protocols that run with an external oracle.
  std::vector<Timestamp> punish;

  // Relay payload (Algorithm 3): the round-(k-1) messages the sender
  // received, tagged with their original senders. vector<Message> with an
  // incomplete element type is allowed since C++17.
  std::vector<ProcessId> relay_from;
  std::vector<Message> relay_msgs;

  bool operator==(const Message&) const = default;
};

/// The row M_i[k][*]: message received (or not) from each sender this
/// round. Index j holds p_j's round-k message; slot i (self) is always
/// populated with the process's own message, per Algorithm 1's semantics
/// ("there is no need for a process to explicitly send messages to
/// itself").
using RoundMsgs = std::vector<std::optional<Message>>;

}  // namespace timing

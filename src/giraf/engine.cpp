#include "giraf/engine.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace timing {

namespace {
constexpr Round kNever = std::numeric_limits<Round>::max();
}

RoundEngine::RoundEngine(std::vector<std::unique_ptr<Protocol>> processes,
                         std::shared_ptr<Oracle> oracle)
    : procs_(std::move(processes)), oracle_(std::move(oracle)) {
  TM_CHECK(procs_.size() > 1, "engine needs n > 1 processes");
  const auto n = procs_.size();
  outbox_.resize(n);
  rows_.resize(n);
  for (auto& row : rows_) row.assign(n, std::nullopt);
  crash_round_.assign(n, kNever);
  decision_round_.assign(n, -1);
}

void RoundEngine::set_trace_sink(TraceSink* sink) noexcept {
  trace_ = sink;
  for (auto& p : procs_) p->set_trace_sink(sink);
}

void RoundEngine::crash_at(ProcessId i, Round at_round) {
  TM_CHECK(i >= 0 && i < n(), "crash target out of range");
  TM_CHECK(at_round > k_, "cannot crash in the past");
  crash_round_[i] = at_round;
}

bool RoundEngine::alive(ProcessId i) const noexcept {
  return k_ < crash_round_[i];
}

ProcessId RoundEngine::hint(ProcessId i, Round k) {
  return oracle_ ? oracle_->query(i, k) : kNoProcess;
}

void RoundEngine::lazy_initialize() {
  if (initialized_) return;
  initialized_ = true;
  for (ProcessId i = 0; i < n(); ++i) {
    outbox_[i] = procs_[i]->initialize(hint(i, 0));
  }
}

Round RoundEngine::step(const LinkMatrix& fates) { return step_impl(fates); }

Round RoundEngine::step(const PackedLinkMatrix& fates) {
  return step_impl(fates);
}

template <class Matrix>
Round RoundEngine::step_impl(const Matrix& fates) {
  TM_CHECK(fates.n() == n(), "matrix size mismatch");
  lazy_initialize();
  ++k_;
  trace_emit(trace_, TraceEvent::round_start(k_));
  const bool sp_on = spans_ != nullptr && spans_->enabled();
  const std::uint64_t rs_id =
      sp_on ? make_span_id(span_kind::kRound, static_cast<std::uint64_t>(k_),
                           span_ctx_)
            : 0;
  if (sp_on) spans_->begin(rs_id, span_parent_, span_kind::kRound, k_);
  if (trace_ != nullptr) {
    for (ProcessId i = 0; i < n(); ++i) {
      if (crash_round_[i] == k_) trace_->record(TraceEvent::crash(k_, i));
    }
  }

  // Start of round k_: clear rows, place own messages, dispatch sends.
  for (ProcessId i = 0; i < n(); ++i) {
    std::fill(rows_[i].begin(), rows_[i].end(), std::nullopt);
  }
  msgs_last_round_ = 0;
  for (ProcessId i = 0; i < n(); ++i) {
    if (!alive(i)) continue;
    rows_[i][i] = outbox_[i].msg;  // own message always received
    for (ProcessId d : outbox_[i].dests) {
      if (d == i) continue;
      TM_CHECK(d >= 0 && d < n(), "destination out of range");
      ++stats_.messages_sent;
      ++msgs_last_round_;
      const Delay fate = fates.at(d, i);
      trace_emit(trace_, TraceEvent::msg(EventKind::kMsgSent, k_, i, d));
      if (fate == kLost) {
        ++stats_.lost_messages;
        trace_emit(trace_, TraceEvent::msg(EventKind::kMsgLost, k_, i, d));
      } else if (fate == 0) {
        ++stats_.timely_deliveries;
        if (k_ < crash_round_[d]) rows_[d][i] = outbox_[i].msg;
        trace_emit(trace_, TraceEvent::msg(EventKind::kMsgTimely, k_, i, d));
      } else {
        ++stats_.late_messages;
        in_flight_.push_back(InFlight{k_ + fate, d, i});
        // The message's fate is known at sampling time; record it in the
        // round it belongs to (by the time it arrives, that round's
        // computation is over and it can no longer matter).
        trace_emit(trace_,
                   TraceEvent::msg(EventKind::kMsgLate, k_, i, d, fate));
      }
    }
  }

  // Late messages due this round: they belong to an earlier round whose
  // computation already happened, so they only count as late arrivals.
  std::erase_if(in_flight_, [&](const InFlight& f) {
    if (f.due > k_) return false;
    ++stats_.late_arrivals;
    return true;
  });

  // End of round k_: oracle query + compute.
  for (ProcessId i = 0; i < n(); ++i) {
    if (!alive(i)) continue;
    const bool was_decided = procs_[i]->has_decided();
    const ProcessId ld = hint(i, k_);
    if (oracle_ != nullptr) {
      trace_emit(trace_, TraceEvent::oracle(k_, i, ld));
    }
    outbox_[i] = procs_[i]->compute(k_, rows_[i], ld);
    if (!was_decided && procs_[i]->has_decided()) {
      decision_round_[i] = k_;
    }
  }
  if (sp_on) spans_->end(rs_id, span_kind::kRound, k_);
  trace_emit(trace_, TraceEvent::round_end(k_));
  return k_;
}

template Round RoundEngine::step_impl(const LinkMatrix&);
template Round RoundEngine::step_impl(const PackedLinkMatrix&);

Round RoundEngine::run(TimelinessSampler& sampler, int max_rounds) {
  TM_CHECK(sampler.n() == n(), "sampler size mismatch");
  PackedLinkMatrix fates(n());
  for (int r = 0; r < max_rounds; ++r) {
    sampler.sample_round(k_ + 1, fates);
    step(fates);
    if (all_alive_decided()) return global_decision_round();
  }
  return all_alive_decided() ? global_decision_round() : -1;
}

bool RoundEngine::all_alive_decided() const noexcept {
  for (ProcessId i = 0; i < n(); ++i) {
    if (alive(i) && !procs_[i]->has_decided()) return false;
  }
  return true;
}

Round RoundEngine::global_decision_round() const noexcept {
  Round g = -1;
  for (ProcessId i = 0; i < n(); ++i) g = std::max(g, decision_round_[i]);
  return g;
}

}  // namespace timing

// The GIRAF round engine: an implementation of Algorithm 1's environment
// for lock-step (synchronized) rounds, which is the setting of the
// paper's analysis (Section 4: "we assume that processes proceed in
// synchronized rounds, although this is not required for correctness").
//
// Each round k:
//   1. every alive process's pending round-k message is dispatched to its
//      destination set D_i \ {i}; the link matrix decides each copy's fate
//      (timely / late by d rounds / lost);
//   2. timely copies land in the recipients' round-k row; a process's own
//      message always appears in its own row (slot i);
//   3. at end-of-round, each alive process queries the oracle and runs
//      compute(k, row, oracle output), yielding its round-(k+1) message.
//
// Late messages belong to the round stamped on them; by the time they
// arrive that round's computation is over, so they can no longer influence
// the protocol (exactly as in the paper's PlanetLab implementation, where
// a buffered past-round message is never revisited). The engine counts
// them for diagnostics.
#pragma once

#include <memory>
#include <vector>

#include "giraf/oracle.hpp"
#include "giraf/protocol.hpp"
#include "obs/span.hpp"
#include "obs/trace_sink.hpp"
#include "sim/link_matrix.hpp"
#include "sim/sampler.hpp"

namespace timing {

struct EngineStats {
  long long messages_sent = 0;     ///< total point-to-point sends
  long long timely_deliveries = 0;
  /// Messages whose sampled fate was "late", counted at send time (the
  /// trace's view): messages_sent == timely + late_messages + lost.
  long long late_messages = 0;
  /// Of those, the ones that actually arrived before the run ended
  /// (<= late_messages; the rest were still in flight).
  long long late_arrivals = 0;
  long long lost_messages = 0;
};

class RoundEngine {
 public:
  /// `oracle` may be null for protocols that ignore the leader hint (the
  /// hint is then kNoProcess).
  RoundEngine(std::vector<std::unique_ptr<Protocol>> processes,
              std::shared_ptr<Oracle> oracle);

  int n() const noexcept { return static_cast<int>(procs_.size()); }

  /// Schedule a crash: the process executes rounds < at_round only.
  /// Must be called before the process reaches that round.
  void crash_at(ProcessId i, Round at_round);

  /// Execute one round with the given link fates. Returns the round number
  /// just executed (rounds are 1-based). The packed overload reads the bit
  /// plane first and only touches the delay plane for late fates — run()
  /// drives rounds through it.
  Round step(const LinkMatrix& fates);
  Round step(const PackedLinkMatrix& fates);

  /// Drive rounds from the sampler until every alive process has decided
  /// or `max_rounds` have run. Returns the global decision round (the
  /// largest decision round among deciders, per the paper's definition)
  /// or -1 when some alive process never decided. Samples into a single
  /// reused PackedLinkMatrix (identical fates to the scalar path).
  Round run(TimelinessSampler& sampler, int max_rounds);

  Round current_round() const noexcept { return k_; }
  bool alive(ProcessId i) const noexcept;
  bool all_alive_decided() const noexcept;

  const Protocol& process(ProcessId i) const { return *procs_[i]; }
  Protocol& process(ProcessId i) { return *procs_[i]; }

  /// Round in which process i decided; -1 if it has not.
  Round decision_round(ProcessId i) const noexcept { return decision_round_[i]; }
  /// max over deciders, -1 if nobody decided.
  Round global_decision_round() const noexcept;

  const EngineStats& stats() const noexcept { return stats_; }
  /// Messages sent in the most recent round (stable-state message
  /// complexity measurements).
  long long messages_last_round() const noexcept { return msgs_last_round_; }

  /// Fraction of sent messages that were delivered timely; the engine's
  /// own view of the paper's p, cross-checkable against the sampler-side
  /// RunMeasurement::timely_fraction().
  double timely_fraction() const noexcept {
    return stats_.messages_sent
               ? static_cast<double>(stats_.timely_deliveries) /
                     static_cast<double>(stats_.messages_sent)
               : 0.0;
  }

  /// Install a trace sink (null disables). The engine emits
  /// RoundStart/RoundEnd, per-link Msg* fates, per-process OracleOutput
  /// and Crash events; Decide events come from the protocols' own decide
  /// paths, so the sink is forwarded to every process.
  void set_trace_sink(TraceSink* sink) noexcept;

  /// Install a span tracer (null disables). Each subsequent round becomes
  /// a `round` span under `parent` — id make_span_id(kRound, k, ctx) —
  /// bracketing the whole round body (dispatch + compute). `ctx`
  /// distinguishes engines sharing one trace (e.g. consecutive consensus
  /// instances reusing round numbers).
  void set_span_tracer(SpanTracer* spans, std::uint64_t parent = 0,
                       std::uint32_t ctx = 0) noexcept {
    spans_ = spans;
    span_parent_ = parent;
    span_ctx_ = ctx;
  }

  /// The row each process saw last round (test introspection).
  const RoundMsgs& last_row(ProcessId i) const { return rows_[i]; }

 private:
  struct InFlight {
    Round due;           ///< round during which it arrives
    ProcessId dst;
    ProcessId src;
  };

  std::vector<std::unique_ptr<Protocol>> procs_;
  std::shared_ptr<Oracle> oracle_;
  std::vector<SendSpec> outbox_;       ///< round-(k_+1) messages
  std::vector<RoundMsgs> rows_;        ///< rows of the round in progress
  std::vector<Round> crash_round_;
  std::vector<Round> decision_round_;
  std::vector<InFlight> in_flight_;
  EngineStats stats_;
  TraceSink* trace_ = nullptr;
  SpanTracer* spans_ = nullptr;
  std::uint64_t span_parent_ = 0;
  std::uint32_t span_ctx_ = 0;
  long long msgs_last_round_ = 0;
  Round k_ = 0;
  bool initialized_ = false;

  void lazy_initialize();
  ProcessId hint(ProcessId i, Round k);
  /// Shared round body; Matrix is LinkMatrix or PackedLinkMatrix (both
  /// expose n() and at(dst, src)).
  template <class Matrix>
  Round step_impl(const Matrix& fates);
};

}  // namespace timing

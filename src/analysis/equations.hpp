// Closed-form IID analysis of Section 4.1: the probability P_M that a
// single communication round satisfies each model's requirements when
// every link delivers timely with IID probability p, and the resulting
// expected number of rounds to global decision (Equations (1)-(10)).
//
// Conventions from the paper:
//  * the process's link with itself is NOT treated differently - it is an
//    IID Bernoulli(p) entry like all others ("For simplicity, we do not
//    treat a process' link with itself differently than other links");
//  * an algorithm that needs R conforming rounds decides once R
//    consecutive rounds conform; with per-round success probability P^R
//    for a window starting at any round, the paper bounds
//    E(D) = P^-R + (R - 1).
#pragma once

#include "models/timing_model.hpp"

namespace timing::analysis {

/// Equation (1): P_ES = p^(n^2).
double p_es(int n, double p) noexcept;

/// Equation (4): Pr(M|L) - given a timely leader entry in a row, the
/// probability that the row still reaches a majority of ones:
/// sum_{i=floor(n/2)}^{n-1} C(n-1, i) p^i (1-p)^(n-1-i).
double pr_majority_given_leader(int n, double p) noexcept;

/// Equation (3): P_<>LM = (p * Pr(M|L))^n.
double p_lm(int n, double p) noexcept;

/// Equation (6): P_<>WLM = p^n * Pr(M|L).
double p_wlm(int n, double p) noexcept;

/// Equation (9) (lower bound): P_<>AFM >= Pr(X > n/2)^(2n),
/// X ~ Binomial(n, p).
double p_afm(int n, double p) noexcept;

/// Dispatch per model.
double p_model(TimingModel m, int n, double p) noexcept;

/// E(D) = P^-R + (R-1) for an algorithm needing R conforming rounds -
/// the PAPER's formula. It treats the R-round windows starting at each
/// round as independent Bernoulli(P^R) events, which is optimistic: the
/// windows overlap. See exact_expected_rounds.
double expected_rounds(double p_round, int rounds_needed) noexcept;

/// The exact expectation of the first round by which R consecutive
/// conforming IID rounds have occurred (the classical run-of-successes
/// renewal formula): E = (1 - P^R) / ((1 - P) P^R). Always at least the
/// paper's approximation; they agree as P -> 1. Our own refinement - see
/// bench/ablation_window_formula for how much the paper's curves shift.
double exact_expected_rounds(double p_round, int rounds_needed) noexcept;

/// exact_expected_rounds applied to a model's closed-form P_M.
double e_rounds_exact(AnalyzedAlgorithm a, int n, double p) noexcept;

/// Equations (2), (5), (7), (8), (10) in one place.
double e_rounds_es(int n, double p) noexcept;           ///< Eq. (2),  R=3
double e_rounds_lm(int n, double p) noexcept;           ///< Eq. (5),  R=3
double e_rounds_wlm_direct(int n, double p) noexcept;   ///< Eq. (7),  R=4
double e_rounds_wlm_simulated(int n, double p) noexcept;///< Eq. (8),  R=7
double e_rounds_afm(int n, double p) noexcept;          ///< Eq. (10), R=5

/// E(D) for any analysed algorithm (Figure 1(a)/(b) curves).
double e_rounds(AnalyzedAlgorithm a, int n, double p) noexcept;

/// log10 of E(D) (stable for large n, Appendix C sweeps).
double log10_e_rounds(AnalyzedAlgorithm a, int n, double p) noexcept;

/// Appendix C, Lemma 13: the Chernoff upper bound
/// E(D_<>AFM) <= (1 - e^{-(1 - 1/(2p))^2 np/2})^{-10n} + 4, for p > 1/2;
/// tends to 5 as n grows.
double afm_chernoff_upper_bound(int n, double p) noexcept;

}  // namespace timing::analysis

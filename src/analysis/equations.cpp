#include "analysis/equations.hpp"

#include <cmath>
#include <limits>

#include "common/binomial.hpp"
#include "common/check.hpp"

namespace timing::analysis {

namespace {
bool valid_np(int n, double p) {
  return n > 1 && p >= 0.0 && p <= 1.0;
}
}  // namespace

double p_es(int n, double p) noexcept {
  TM_CHECK(valid_np(n, p), "invalid (n, p)");
  if (p == 0.0) return 0.0;
  return std::exp(static_cast<double>(n) * n * std::log(p));
}

double pr_majority_given_leader(int n, double p) noexcept {
  TM_CHECK(valid_np(n, p), "invalid (n, p)");
  // Majority of ones in a row of n entries, given one entry (the
  // leader's) is already 1: at least floor(n/2) of the remaining n-1.
  return binomial_tail_ge(n - 1, n / 2, p);
}

double p_lm(int n, double p) noexcept {
  const double per_row = p * pr_majority_given_leader(n, p);
  if (per_row == 0.0) return 0.0;
  return std::exp(n * std::log(per_row));
}

double p_wlm(int n, double p) noexcept {
  if (p == 0.0) return 0.0;
  return std::exp(n * std::log(p)) * pr_majority_given_leader(n, p);
}

double p_afm(int n, double p) noexcept {
  TM_CHECK(valid_np(n, p), "invalid (n, p)");
  // Pr(X > n/2) with X ~ Bin(n, p): at least floor(n/2)+1 successes.
  const double row = binomial_tail_ge(n, n / 2 + 1, p);
  if (row == 0.0) return 0.0;
  return std::exp(2.0 * n * std::log(row));
}

double p_model(TimingModel m, int n, double p) noexcept {
  switch (m) {
    case TimingModel::kEs: return p_es(n, p);
    case TimingModel::kLm: return p_lm(n, p);
    case TimingModel::kWlm: return p_wlm(n, p);
    case TimingModel::kAfm: return p_afm(n, p);
  }
  return 0.0;
}

double expected_rounds(double p_round, int rounds_needed) noexcept {
  if (p_round <= 0.0) return std::numeric_limits<double>::infinity();
  return std::pow(p_round, -rounds_needed) + (rounds_needed - 1);
}

double exact_expected_rounds(double p_round, int rounds_needed) noexcept {
  if (p_round <= 0.0) return std::numeric_limits<double>::infinity();
  if (p_round >= 1.0) return rounds_needed;
  const double pr = std::pow(p_round, rounds_needed);
  return (1.0 - pr) / ((1.0 - p_round) * pr);
}

double e_rounds_exact(AnalyzedAlgorithm a, int n, double p) noexcept {
  const double pm = p_model(model_of(a), n, p);
  return exact_expected_rounds(pm, rounds_for_global_decision(a));
}

double e_rounds_es(int n, double p) noexcept {
  return expected_rounds(p_es(n, p), 3);
}
double e_rounds_lm(int n, double p) noexcept {
  return expected_rounds(p_lm(n, p), 3);
}
double e_rounds_wlm_direct(int n, double p) noexcept {
  return expected_rounds(p_wlm(n, p), 4);
}
double e_rounds_wlm_simulated(int n, double p) noexcept {
  return expected_rounds(p_wlm(n, p), 7);
}
double e_rounds_afm(int n, double p) noexcept {
  return expected_rounds(p_afm(n, p), 5);
}

double e_rounds(AnalyzedAlgorithm a, int n, double p) noexcept {
  switch (a) {
    case AnalyzedAlgorithm::kEs3: return e_rounds_es(n, p);
    case AnalyzedAlgorithm::kLm3: return e_rounds_lm(n, p);
    case AnalyzedAlgorithm::kWlmDirect: return e_rounds_wlm_direct(n, p);
    case AnalyzedAlgorithm::kWlmDirect5:
      return expected_rounds(p_wlm(n, p), 5);
    case AnalyzedAlgorithm::kWlmSimulated: return e_rounds_wlm_simulated(n, p);
    case AnalyzedAlgorithm::kAfm5: return e_rounds_afm(n, p);
  }
  return std::numeric_limits<double>::infinity();
}

double log10_e_rounds(AnalyzedAlgorithm a, int n, double p) noexcept {
  // log10(P^-R + (R-1)) computed from log(P) to survive huge exponents.
  const int r = rounds_for_global_decision(a);
  double log_p;  // natural log of the per-round probability
  switch (model_of(a)) {
    case TimingModel::kEs:
      log_p = p > 0 ? static_cast<double>(n) * n * std::log(p)
                    : -std::numeric_limits<double>::infinity();
      break;
    case TimingModel::kLm: {
      const double per_row = p * pr_majority_given_leader(n, p);
      log_p = per_row > 0 ? n * std::log(per_row)
                          : -std::numeric_limits<double>::infinity();
      break;
    }
    case TimingModel::kWlm: {
      const double mgl = pr_majority_given_leader(n, p);
      log_p = (p > 0 && mgl > 0)
                  ? n * std::log(p) + std::log(mgl)
                  : -std::numeric_limits<double>::infinity();
      break;
    }
    case TimingModel::kAfm: {
      const double row = binomial_tail_ge(n, n / 2 + 1, p);
      log_p = row > 0 ? 2.0 * n * std::log(row)
                      : -std::numeric_limits<double>::infinity();
      break;
    }
    default:
      log_p = -std::numeric_limits<double>::infinity();
  }
  if (!std::isfinite(log_p)) return std::numeric_limits<double>::infinity();
  const double log10_inv = -r * log_p / std::log(10.0);
  // E(D) = 10^log10_inv + (r-1); the additive term only matters when the
  // power term is small.
  if (log10_inv > 15.0) return log10_inv;
  return std::log10(std::pow(10.0, log10_inv) + (r - 1));
}

double afm_chernoff_upper_bound(int n, double p) noexcept {
  const double row_lb = chernoff_majority_lower_bound(n, p);
  if (row_lb <= 0.0) return std::numeric_limits<double>::infinity();
  return std::pow(row_lb, -10.0 * n) + 4.0;
}

}  // namespace timing::analysis

// Section 4.1 analysis generalized to per-link timing assumptions: the
// probability that one round satisfies each *granular* predicate when
// link (dst <- src) delivers timely with a probability determined by its
// LinkModelClass. Heterogeneous links make the row/column counts
// Poisson-binomial instead of binomial, so the closed forms of
// equations.hpp become tail sums computed by dynamic programming.
//
// Structure mirrors the paper's equations exactly:
//  * G-ES     - product of per-link probabilities over required links
//               (Eq. (1) is the all-sync special case p^(n^2));
//  * G-<>LM   - per row: required leader entry timely AND the row's
//               required count reaches a majority (Eq. (3));
//  * G-<>WLM  - required leader column timely AND the leader row's
//               required count reaches a majority (Eq. (6));
//  * G-<>AFM  - product of row and column majority tails, the same
//               independence lower bound as Eq. (9).
// With an all-sync matrix and p_sync = p these agree with p_model(...)
// to floating-point reassociation (tests/granular_test.cpp pins it).
//
// Async links never enter a conformance term — they carry no obligation
// and cannot count towards quorums — but p_async still matters to
// granular_p_class, the analytic analog of the csat trace field.
#pragma once

#include "models/link_model_matrix.hpp"
#include "models/timing_model.hpp"

namespace timing::analysis {

/// Per-class IID timeliness probabilities. The defaults make every link
/// certain, so an unset class is conformance-neutral.
struct GranularLinkProbs {
  double p_sync = 1.0;
  double p_psync = 1.0;
  double p_async = 1.0;
  /// The samplers force a process's link with itself timely, while the
  /// paper's closed forms price self links like any other ("we do not
  /// treat a process' link with itself differently"). Set true to match
  /// measured runs; leave false to match equations.hpp exactly.
  bool timely_self = false;

  double of(LinkModelClass c) const noexcept {
    switch (c) {
      case LinkModelClass::kSync: return p_sync;
      case LinkModelClass::kPartialSync: return p_psync;
      case LinkModelClass::kAsync: return p_async;
    }
    return 1.0;
  }
};

double granular_p_es(const LinkModelMatrix& m,
                     const GranularLinkProbs& q) noexcept;
double granular_p_lm(const LinkModelMatrix& m, ProcessId leader,
                     const GranularLinkProbs& q) noexcept;
double granular_p_wlm(const LinkModelMatrix& m, ProcessId leader,
                      const GranularLinkProbs& q) noexcept;
/// Independence lower bound, like Eq. (9).
double granular_p_afm(const LinkModelMatrix& m,
                      const GranularLinkProbs& q) noexcept;

/// Dispatch per model. `leader` is ignored for ES and <>AFM.
double granular_p_model(TimingModel model, const LinkModelMatrix& m,
                        ProcessId leader,
                        const GranularLinkProbs& q) noexcept;

/// Probability that every class-`c` link is timely in one round — the
/// analytic analog of the csat conformance bit trace_tool reports.
double granular_p_class(const LinkModelMatrix& m, LinkModelClass c,
                        const GranularLinkProbs& q) noexcept;

}  // namespace timing::analysis

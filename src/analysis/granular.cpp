#include "analysis/granular.hpp"

#include <vector>

#include "common/check.hpp"

namespace timing::analysis {

namespace {

/// Pr(sum of independent Bernoulli(probs[i]) >= k) by the standard
/// Poisson-binomial DP: O(|probs| * k) time, one vector of doubles.
double poisson_binomial_tail(const std::vector<double>& probs,
                             int k) noexcept {
  if (k <= 0) return 1.0;
  if (k > static_cast<int>(probs.size())) return 0.0;
  // dp[j] = Pr(exactly j successes so far), capped at k (the cap bucket
  // absorbs ">= k" mass so the vector stays small).
  std::vector<double> dp(static_cast<std::size_t>(k) + 1, 0.0);
  dp[0] = 1.0;
  for (const double p : probs) {
    for (int j = k; j >= 1; --j) {
      const auto ju = static_cast<std::size_t>(j);
      if (j == k) {
        dp[ju] += dp[ju - 1] * p;
      } else {
        dp[ju] = dp[ju] * (1.0 - p) + dp[ju - 1] * p;
      }
    }
    dp[0] *= 1.0 - p;
  }
  return dp[static_cast<std::size_t>(k)];
}

double link_prob(const LinkModelMatrix& m, const GranularLinkProbs& q,
                 ProcessId dst, ProcessId src) noexcept {
  if (dst == src && q.timely_self) return 1.0;
  return q.of(m.at(dst, src));
}

/// Success probabilities of the required links of row `dst`, optionally
/// excluding one source column (a link already conditioned timely).
std::vector<double> required_row_probs(const LinkModelMatrix& m,
                                       ProcessId dst,
                                       const GranularLinkProbs& q,
                                       ProcessId exclude_src = kNoProcess) {
  std::vector<double> probs;
  probs.reserve(static_cast<std::size_t>(m.n()));
  for (ProcessId s = 0; s < m.n(); ++s) {
    if (s == exclude_src) continue;
    if (m.reliable(dst, s)) probs.push_back(link_prob(m, q, dst, s));
  }
  return probs;
}

std::vector<double> required_col_probs(const LinkModelMatrix& m,
                                       ProcessId src,
                                       const GranularLinkProbs& q) {
  std::vector<double> probs;
  probs.reserve(static_cast<std::size_t>(m.n()));
  for (ProcessId d = 0; d < m.n(); ++d) {
    if (m.reliable(d, src)) probs.push_back(link_prob(m, q, d, src));
  }
  return probs;
}

}  // namespace

double granular_p_es(const LinkModelMatrix& m,
                     const GranularLinkProbs& q) noexcept {
  double p = 1.0;
  for (ProcessId d = 0; d < m.n(); ++d) {
    for (ProcessId s = 0; s < m.n(); ++s) {
      if (m.reliable(d, s)) p *= link_prob(m, q, d, s);
    }
  }
  return p;
}

double granular_p_lm(const LinkModelMatrix& m, ProcessId leader,
                     const GranularLinkProbs& q) noexcept {
  TM_CHECK(leader >= 0 && leader < m.n(), "leader out of range");
  const int maj = majority_size(m.n());
  double p = 1.0;
  // Rows are independent: each must have its required leader entry
  // timely (if required) and reach a required-count majority. When the
  // leader entry is required it is conditioned timely, so the rest of
  // the row only needs maj - 1 more.
  for (ProcessId d = 0; d < m.n(); ++d) {
    if (m.reliable(d, leader)) {
      p *= link_prob(m, q, d, leader) *
           poisson_binomial_tail(required_row_probs(m, d, q, leader),
                                 maj - 1);
    } else {
      p *= poisson_binomial_tail(required_row_probs(m, d, q), maj);
    }
  }
  return p;
}

double granular_p_wlm(const LinkModelMatrix& m, ProcessId leader,
                      const GranularLinkProbs& q) noexcept {
  TM_CHECK(leader >= 0 && leader < m.n(), "leader out of range");
  const int maj = majority_size(m.n());
  // Required leader column timely (includes the always-required self
  // link, which is also the conditioned leader-row entry)...
  double p = 1.0;
  for (ProcessId d = 0; d < m.n(); ++d) {
    if (m.reliable(d, leader)) p *= link_prob(m, q, d, leader);
  }
  // ... and the leader row reaches a majority given that entry.
  return p * poisson_binomial_tail(required_row_probs(m, leader, q, leader),
                                   maj - 1);
}

double granular_p_afm(const LinkModelMatrix& m,
                      const GranularLinkProbs& q) noexcept {
  const int maj = majority_size(m.n());
  double p = 1.0;
  for (ProcessId d = 0; d < m.n(); ++d) {
    p *= poisson_binomial_tail(required_row_probs(m, d, q), maj);
  }
  for (ProcessId s = 0; s < m.n(); ++s) {
    p *= poisson_binomial_tail(required_col_probs(m, s, q), maj);
  }
  return p;
}

double granular_p_model(TimingModel model, const LinkModelMatrix& m,
                        ProcessId leader,
                        const GranularLinkProbs& q) noexcept {
  switch (model) {
    case TimingModel::kEs: return granular_p_es(m, q);
    case TimingModel::kLm: return granular_p_lm(m, leader, q);
    case TimingModel::kWlm: return granular_p_wlm(m, leader, q);
    case TimingModel::kAfm: return granular_p_afm(m, q);
  }
  return 0.0;
}

double granular_p_class(const LinkModelMatrix& m, LinkModelClass c,
                        const GranularLinkProbs& q) noexcept {
  double p = 1.0;
  for (ProcessId d = 0; d < m.n(); ++d) {
    for (ProcessId s = 0; s < m.n(); ++s) {
      if (m.at(d, s) == c) p *= link_prob(m, q, d, s);
    }
  }
  return p;
}

}  // namespace timing::analysis

// The Section 5 experiment drivers: sweep round timeouts over a simulated
// LAN or WAN testbed, and collect everything Figures 1(c)-(i) plot.
//
// Methodology copied from the paper:
//  * per timeout, `runs` independent runs of `rounds_per_run` rounds
//    (33 x 300 in the paper's WAN experiment);
//  * per run, the fraction of rounds satisfying each model (P_M), with
//    mean, 95% confidence interval and variance across runs
//    (Figures 1(e) and 1(f));
//  * per run, the number of rounds until the model's conditions for
//    global decision hold (R_M consecutive conforming rounds), averaged
//    over `start_points` random starting positions (15 in the paper),
//    then averaged across runs (Figure 1(g)); wall-clock time is
//    rounds x timeout (Figures 1(h) and 1(i));
//  * the run-wide fraction of timely messages gives the timeout -> p
//    mapping (Figure 1(d));
//  * the same latency seeds are reused across timeouts (paired design),
//    so curves vary with the timeout, not with resampling noise.
//
// Execution: every (timeout, run) cell is an independent trial fanned out
// over the shared thread pool (common/parallel.hpp, TIMING_THREADS env).
// Trial randomness is a pure function of (cfg.seed, run index), and the
// per-timeout statistics are folded in run order on the calling thread,
// so results are bit-identical for every thread count — TIMING_THREADS=1
// reproduces the historical serial loop exactly.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "harness/measurement.hpp"
#include "sim/latency_model.hpp"

namespace timing {

enum class Testbed { kLan, kWan };

struct ExperimentConfig {
  Testbed testbed = Testbed::kWan;
  std::vector<double> timeouts_ms;
  int runs = 33;
  int rounds_per_run = 300;
  int start_points = 15;
  std::uint64_t seed = 42;
  /// kNoProcess picks the default: the well-connected UK site on the WAN,
  /// the best-connected machine on the LAN (the paper's method). Override
  /// to reproduce the "average leader" experiment.
  ProcessId leader = kNoProcess;
  LanProfile lan{};
  WanProfile wan{};
  /// Rounds needed for global decision per model; defaults from the
  /// paper (ES 3, LM 3, WLM 4, AFM 5).
  std::array<int, kNumModels> decision_rounds{3, 3, 4, 5};
  /// Per-link timing assumptions. Empty (n() == 0) runs the homogeneous
  /// predicates; otherwise every trial evaluates the granular predicates
  /// against this matrix and the sweep reports per-class conformance.
  /// An all-sync matrix reproduces the homogeneous results bit-for-bit.
  LinkModelMatrix link_models;
};

/// Bin count of ModelTimeoutStats::rounds_hist.
inline constexpr std::size_t kRoundsHistBins = 32;

struct ModelTimeoutStats {
  double mean_pm = 0.0;   ///< mean incidence across runs
  double ci95_pm = 0.0;   ///< 95% CI half-width of the mean
  double var_pm = 0.0;    ///< across-run variance (Figure 1(f))
  double mean_rounds = 0.0;   ///< rounds to decision conditions
  double mean_time_ms = 0.0;  ///< rounds x timeout
  double censored_fraction = 0.0;
  /// Across-run distribution of the per-run mean decision rounds
  /// (integer bin counts, so exactly thread-count-invariant).
  Histogram rounds_hist;
};

struct TimeoutResult {
  double timeout_ms = 0.0;
  double mean_p = 0.0;  ///< Figure 1(d)
  std::array<ModelTimeoutStats, kNumModels> models;
  /// Granular sweeps only (cfg.link_models set): mean fraction of rounds,
  /// across runs, in which every link of the class was timely.
  bool granular = false;
  std::array<double, kNumLinkModelClasses> mean_class_pm{};
};

/// The leader the configuration resolves to (exposed for reporting).
ProcessId resolve_leader(const ExperimentConfig& cfg);

/// Expected RTT matrix of the configured testbed (medians, no noise) -
/// the "ping measurements" used for offline leader election.
std::vector<std::vector<double>> expected_rtt_matrix(
    const ExperimentConfig& cfg);

std::vector<TimeoutResult> run_experiment(const ExperimentConfig& cfg);

}  // namespace timing

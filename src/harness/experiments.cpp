#include "harness/experiments.hpp"

#include <cmath>
#include <memory>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "oracles/omega.hpp"

namespace timing {

namespace {

std::unique_ptr<LatencyModel> make_model(const ExperimentConfig& cfg,
                                         std::uint64_t seed) {
  if (cfg.testbed == Testbed::kLan) {
    return std::make_unique<LanLatencyModel>(cfg.lan, seed);
  }
  return std::make_unique<WanLatencyModel>(cfg.wan, seed);
}

/// Everything one (timeout, run) trial contributes to the sweep's
/// statistics. Plain values, folded later in run order.
struct TrialOut {
  double p = 0.0;
  std::array<double, kNumModels> pm{};
  std::array<double, kNumModels> rounds{};
  std::array<double, kNumModels> censored{};
  std::array<double, kNumLinkModelClasses> class_pm{};  ///< granular only
};

}  // namespace

std::vector<std::vector<double>> expected_rtt_matrix(
    const ExperimentConfig& cfg) {
  const int n = cfg.testbed == Testbed::kLan ? cfg.lan.n : cfg.wan.n;
  std::vector<std::vector<double>> rtt(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  if (cfg.testbed == Testbed::kLan) {
    // Median one-way ~ base + exp(mu) scaled by the node factors.
    const double med = cfg.lan.base_ms + std::exp(cfg.lan.lognormal_mu);
    for (ProcessId i = 0; i < n; ++i) {
      for (ProcessId j = 0; j < n; ++j) {
        if (i == j) continue;
        rtt[i][j] =
            2.0 * med * cfg.lan.node_factor[i % 8] * cfg.lan.node_factor[j % 8];
      }
    }
  } else {
    WanLatencyModel probe(cfg.wan, /*seed=*/1);
    for (ProcessId i = 0; i < n; ++i) {
      for (ProcessId j = 0; j < n; ++j) {
        if (i == j) continue;
        rtt[i][j] = probe.base_ms(i, j) + probe.base_ms(j, i);
      }
    }
  }
  return rtt;
}

ProcessId resolve_leader(const ExperimentConfig& cfg) {
  if (cfg.leader != kNoProcess) return cfg.leader;
  if (cfg.testbed == Testbed::kWan) return WanLatencyModel::kUk;
  return elect_well_connected(expected_rtt_matrix(cfg));
}

std::vector<TimeoutResult> run_experiment(const ExperimentConfig& cfg) {
  TM_CHECK(!cfg.timeouts_ms.empty(), "no timeouts configured");
  TM_CHECK(cfg.runs > 0 && cfg.rounds_per_run > 1, "bad run shape");
  const int group_n = cfg.testbed == Testbed::kLan ? cfg.lan.n : cfg.wan.n;
  TM_CHECK(cfg.leader == kNoProcess ||
               (cfg.leader >= 0 && cfg.leader < group_n),
           "leader out of range");
  const ProcessId leader = resolve_leader(cfg);

  // Per-link timing assumptions, shared read-only by every trial.
  const bool granular = cfg.link_models.n() > 0;
  TM_CHECK(!granular || cfg.link_models.n() == group_n,
           "link_models size must match the testbed's group size");
  const GranularContext granular_ctx{
      granular ? cfg.link_models : LinkModelMatrix(0)};

  // Fan every (timeout, run) cell out as an independent trial. A trial's
  // randomness depends only on (cfg.seed, run) — the paired design: the
  // same latency stream for every timeout — so the executing thread and
  // the thread count are irrelevant to its output.
  const auto runs = static_cast<std::size_t>(cfg.runs);
  const std::size_t cells = cfg.timeouts_ms.size() * runs;
  const std::vector<TrialOut> trials =
      run_trials<TrialOut>(cells, [&](std::size_t cell) {
        const double timeout = cfg.timeouts_ms[cell / runs];
        const std::uint64_t run = cell % runs;
        TrialOut out;
        auto model = make_model(cfg, substream_seed(cfg.seed, run));
        LatencyTimelinessSampler sampler(*model, timeout);

        // Streaming fast path: the fused sample-and-evaluate kernel plus
        // incremental window trackers replace the sat-vector pipeline.
        // The latency sub-stream and the start_rng draw order are the
        // ones measure_run + decision_stats consumed, so every statistic
        // below is bit-identical to the historical path (asserted by
        // tests/harness_test.cpp). The granular variant preserves both
        // stream orders, so an all-sync link_models matrix reproduces
        // the homogeneous sweep bit-for-bit (tests/granular_test.cpp).
        Rng start_rng = substream(cfg.seed ^ 0xabcdef, run);
        if (granular) {
          const GranularStreamedRun m = measure_run_streaming_granular(
              sampler, cfg.rounds_per_run, leader, cfg.decision_rounds,
              cfg.start_points, start_rng, granular_ctx);
          out.p = m.base.timely_fraction();
          out.pm = m.base.pm;
          out.rounds = m.base.mean_rounds;
          out.censored = m.base.censored;
          out.class_pm = m.class_pm;
        } else {
          const StreamedRun m =
              measure_run_streaming(sampler, cfg.rounds_per_run, leader,
                                    cfg.decision_rounds, cfg.start_points,
                                    start_rng);
          out.p = m.timely_fraction();
          out.pm = m.pm;
          out.rounds = m.mean_rounds;
          out.censored = m.censored;
        }
        return out;
      });

  // Fold per timeout in run order — the exact order of the historical
  // serial loop, so the sweep's statistics are bit-identical to it.
  std::vector<TimeoutResult> results;
  results.reserve(cfg.timeouts_ms.size());
  for (std::size_t ti = 0; ti < cfg.timeouts_ms.size(); ++ti) {
    const double timeout = cfg.timeouts_ms[ti];
    TimeoutResult tr;
    tr.timeout_ms = timeout;

    RunningStats p_stats;
    std::array<RunningStats, kNumModels> pm_stats;
    std::array<RunningStats, kNumModels> rounds_stats;
    std::array<RunningStats, kNumModels> censored_stats;
    std::array<RunningStats, kNumLinkModelClasses> class_stats;
    std::array<Histogram, kNumModels> rounds_hist;
    for (auto& h : rounds_hist) {
      h = Histogram(0.0, static_cast<double>(cfg.rounds_per_run) + 1.0,
                    kRoundsHistBins);
    }

    for (std::size_t run = 0; run < runs; ++run) {
      const TrialOut& t = trials[ti * runs + run];
      p_stats.add(t.p);
      for (int idx = 0; idx < kNumModels; ++idx) {
        const auto i = static_cast<std::size_t>(idx);
        pm_stats[i].add(t.pm[i]);
        rounds_stats[i].add(t.rounds[i]);
        censored_stats[i].add(t.censored[i]);
        rounds_hist[i].add(t.rounds[i]);
      }
      for (int c = 0; c < kNumLinkModelClasses; ++c) {
        class_stats[static_cast<std::size_t>(c)].add(
            t.class_pm[static_cast<std::size_t>(c)]);
      }
    }

    tr.mean_p = p_stats.mean();
    tr.granular = granular;
    if (granular) {
      for (int c = 0; c < kNumLinkModelClasses; ++c) {
        tr.mean_class_pm[static_cast<std::size_t>(c)] =
            class_stats[static_cast<std::size_t>(c)].mean();
      }
    }
    for (int idx = 0; idx < kNumModels; ++idx) {
      auto& ms = tr.models[static_cast<std::size_t>(idx)];
      ms.mean_pm = pm_stats[idx].mean();
      ms.ci95_pm = pm_stats[idx].ci95_half_width();
      ms.var_pm = pm_stats[idx].variance();
      ms.mean_rounds = rounds_stats[idx].mean();
      ms.mean_time_ms = ms.mean_rounds * timeout;
      ms.censored_fraction = censored_stats[idx].mean();
      ms.rounds_hist = rounds_hist[idx];
    }
    results.push_back(tr);
  }
  return results;
}

}  // namespace timing

#include "harness/experiments.hpp"

#include <cmath>
#include <memory>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "oracles/omega.hpp"

namespace timing {

namespace {

std::unique_ptr<LatencyModel> make_model(const ExperimentConfig& cfg,
                                         std::uint64_t seed) {
  if (cfg.testbed == Testbed::kLan) {
    return std::make_unique<LanLatencyModel>(cfg.lan, seed);
  }
  return std::make_unique<WanLatencyModel>(cfg.wan, seed);
}

std::uint64_t run_seed(std::uint64_t base, int run) {
  std::uint64_t s = base ^ (0x51ed2701a2b9d4e3ULL * (run + 1));
  return splitmix64(s);
}

}  // namespace

std::vector<std::vector<double>> expected_rtt_matrix(
    const ExperimentConfig& cfg) {
  const int n = cfg.testbed == Testbed::kLan ? cfg.lan.n : cfg.wan.n;
  std::vector<std::vector<double>> rtt(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  if (cfg.testbed == Testbed::kLan) {
    // Median one-way ~ base + exp(mu) scaled by the node factors.
    const double med = cfg.lan.base_ms + std::exp(cfg.lan.lognormal_mu);
    for (ProcessId i = 0; i < n; ++i) {
      for (ProcessId j = 0; j < n; ++j) {
        if (i == j) continue;
        rtt[i][j] =
            2.0 * med * cfg.lan.node_factor[i % 8] * cfg.lan.node_factor[j % 8];
      }
    }
  } else {
    WanLatencyModel probe(cfg.wan, /*seed=*/1);
    for (ProcessId i = 0; i < n; ++i) {
      for (ProcessId j = 0; j < n; ++j) {
        if (i == j) continue;
        rtt[i][j] = probe.base_ms(i, j) + probe.base_ms(j, i);
      }
    }
  }
  return rtt;
}

ProcessId resolve_leader(const ExperimentConfig& cfg) {
  if (cfg.leader != kNoProcess) return cfg.leader;
  if (cfg.testbed == Testbed::kWan) return WanLatencyModel::kUk;
  return elect_well_connected(expected_rtt_matrix(cfg));
}

std::vector<TimeoutResult> run_experiment(const ExperimentConfig& cfg) {
  TM_CHECK(!cfg.timeouts_ms.empty(), "no timeouts configured");
  TM_CHECK(cfg.runs > 0 && cfg.rounds_per_run > 1, "bad run shape");
  const ProcessId leader = resolve_leader(cfg);

  std::vector<TimeoutResult> results;
  results.reserve(cfg.timeouts_ms.size());

  for (double timeout : cfg.timeouts_ms) {
    TimeoutResult tr;
    tr.timeout_ms = timeout;

    RunningStats p_stats;
    std::array<RunningStats, kNumModels> pm_stats;
    std::array<RunningStats, kNumModels> rounds_stats;
    std::array<RunningStats, kNumModels> censored_stats;

    for (int run = 0; run < cfg.runs; ++run) {
      // Paired seeds: the same latency stream for every timeout.
      const std::uint64_t seed = run_seed(cfg.seed, run);
      auto model = make_model(cfg, seed);
      LatencyTimelinessSampler sampler(*model, timeout);
      RunMeasurement m = measure_run(sampler, cfg.rounds_per_run, leader);
      p_stats.add(m.timely_fraction());

      Rng start_rng(run_seed(cfg.seed ^ 0xabcdef, run));
      for (TimingModel tm : kAllModels) {
        const int idx = model_index(tm);
        pm_stats[idx].add(m.incidence(tm));
        const DecisionStats ds =
            decision_stats(m.sat[static_cast<std::size_t>(idx)],
                           cfg.decision_rounds[static_cast<std::size_t>(idx)],
                           cfg.start_points, start_rng);
        rounds_stats[idx].add(ds.mean_rounds);
        censored_stats[idx].add(ds.censored_fraction);
      }
    }

    tr.mean_p = p_stats.mean();
    for (int idx = 0; idx < kNumModels; ++idx) {
      auto& ms = tr.models[static_cast<std::size_t>(idx)];
      ms.mean_pm = pm_stats[idx].mean();
      ms.ci95_pm = pm_stats[idx].ci95_half_width();
      ms.var_pm = pm_stats[idx].variance();
      ms.mean_rounds = rounds_stats[idx].mean();
      ms.mean_time_ms = ms.mean_rounds * timeout;
      ms.censored_fraction = censored_stats[idx].mean();
    }
    results.push_back(tr);
  }
  return results;
}

}  // namespace timing

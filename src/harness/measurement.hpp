// Per-run measurement machinery mirroring Section 5's methodology:
//  * sample a run of R rounds from a timeliness source;
//  * record, per round, which models' requirements hold (P_M incidence)
//    and the fraction of timely messages (p);
//  * from random starting points, find how many rounds pass until the
//    conditions for global decision hold (R_M consecutive conforming
//    rounds) - the quantity behind Figures 1(g)-(i).
#pragma once

#include <array>
#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "models/predicates.hpp"
#include "models/timing_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_config.hpp"
#include "obs/trace_sink.hpp"
#include "sim/sampler.hpp"

namespace timing {

inline constexpr int kNumModels = 4;

constexpr int model_index(TimingModel m) noexcept {
  return static_cast<int>(m);
}

struct RunMeasurement {
  int rounds = 0;
  /// sat[model][round]: did round (0-based) satisfy the model?
  std::array<std::vector<std::uint8_t>, kNumModels> sat;
  long long messages_total = 0;
  long long messages_timely = 0;
  long long messages_late = 0;
  long long messages_lost = 0;

  /// p for the run: fraction of messages delivered within the timeout.
  double timely_fraction() const noexcept {
    return messages_total
               ? static_cast<double>(messages_timely) / messages_total
               : 0.0;
  }
  /// P_M for the run.
  double incidence(TimingModel m) const noexcept;
};

/// Runs `rounds` rounds of the sampler, evaluating all four predicates
/// with the given (designated) leader. All-to-all traffic is assumed, as
/// in the paper's measurement runs.
///
/// Observability (both off by default, near-zero cost when null):
///  * `trace` receives RoundStart, per-link message-fate, PredicateEval
///    and RoundEnd events for every round;
///  * `metrics` accumulates message/round counters, per-model conforming
///    round counts, and the sample/predicate phase timers.
RunMeasurement measure_run(TimelinessSampler& sampler, int rounds,
                           ProcessId leader, TraceSink* trace = nullptr,
                           MetricsRegistry* metrics = nullptr);

/// Builds the self-contained sampler for one run. Must seed it from the
/// run index alone (e.g. via substream_seed) — factories are invoked
/// concurrently from pool threads.
using SamplerFactory =
    std::function<std::unique_ptr<TimelinessSampler>(int run)>;

/// Observability options for measure_runs. Each trial records into its
/// own private buffer/registry on the pool thread that runs it; the
/// calling thread then drains them in trial-index order, so the JSONL
/// bytes and the merged metrics are bit-identical for every
/// TIMING_THREADS value.
struct MeasureObs {
  /// Record trace events and write them as JSONL here. Null means
  /// "consult TIMING_TRACE" (see TraceConfig::from_env); tracing is off
  /// when that is unset too.
  std::ostream* trace_out = nullptr;
  /// Merged per-trial metrics land here (null disables metrics).
  MetricsRegistry* metrics = nullptr;
  /// Per-trial event cap forwarded to BufferSink (0 = unbounded).
  std::size_t max_events_per_trial = 0;
};

/// Fans `num_runs` independent measurement runs out over the thread pool
/// (common/parallel.hpp). Results are indexed by run and — given a
/// thread-agnostic factory — identical for every TIMING_THREADS value.
/// The default-argument form honours TIMING_TRACE=<path>.
std::vector<RunMeasurement> measure_runs(int num_runs,
                                         const SamplerFactory& make_sampler,
                                         int rounds, ProcessId leader,
                                         const MeasureObs& obs = {});

struct DecisionWindow {
  double rounds = 0.0;   ///< rounds from the start point until conditions held
  bool censored = false; ///< the run ended before conditions held
};

/// First window of `needed` consecutive satisfying rounds at or after
/// `start` (0-based): returns (end_of_window - start + 1). Censored
/// results report the remaining run length (a lower bound).
DecisionWindow rounds_until_conditions(const std::vector<std::uint8_t>& sat,
                                       int start, int needed);

struct DecisionStats {
  double mean_rounds = 0.0;      ///< mean over start points (censored at cap)
  double censored_fraction = 0.0;
};

/// The paper's "15 random points of each run" average.
DecisionStats decision_stats(const std::vector<std::uint8_t>& sat, int needed,
                             int start_points, Rng& rng);

}  // namespace timing

// Per-run measurement machinery mirroring Section 5's methodology:
//  * sample a run of R rounds from a timeliness source;
//  * record, per round, which models' requirements hold (P_M incidence)
//    and the fraction of timely messages (p);
//  * from random starting points, find how many rounds pass until the
//    conditions for global decision hold (R_M consecutive conforming
//    rounds) - the quantity behind Figures 1(g)-(i).
#pragma once

#include <array>
#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "models/predicates.hpp"
#include "models/timing_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_config.hpp"
#include "obs/trace_sink.hpp"
#include "sim/sampler.hpp"

namespace timing {

inline constexpr int kNumModels = 4;

constexpr int model_index(TimingModel m) noexcept {
  return static_cast<int>(m);
}

struct RunMeasurement {
  int rounds = 0;
  /// sat[model][round]: did round (0-based) satisfy the model?
  std::array<std::vector<std::uint8_t>, kNumModels> sat;
  long long messages_total = 0;
  long long messages_timely = 0;
  long long messages_late = 0;
  long long messages_lost = 0;

  /// p for the run: fraction of messages delivered within the timeout.
  double timely_fraction() const noexcept {
    return messages_total
               ? static_cast<double>(messages_timely) / messages_total
               : 0.0;
  }
  /// P_M for the run.
  double incidence(TimingModel m) const noexcept;
};

/// Runs `rounds` rounds of the sampler, evaluating all four predicates
/// with the given (designated) leader. All-to-all traffic is assumed, as
/// in the paper's measurement runs.
///
/// Observability (both off by default, near-zero cost when null):
///  * `trace` receives RoundStart, per-link message-fate, PredicateEval
///    and RoundEnd events for every round;
///  * `metrics` accumulates message/round counters, per-model conforming
///    round counts, and the sample/predicate phase timers.
RunMeasurement measure_run(TimelinessSampler& sampler, int rounds,
                           ProcessId leader, TraceSink* trace = nullptr,
                           MetricsRegistry* metrics = nullptr);

/// Builds the self-contained sampler for one run. Must seed it from the
/// run index alone (e.g. via substream_seed) — factories are invoked
/// concurrently from pool threads.
using SamplerFactory =
    std::function<std::unique_ptr<TimelinessSampler>(int run)>;

/// Observability options for measure_runs. Each trial records into its
/// own private buffer/registry on the pool thread that runs it; the
/// calling thread then drains them in trial-index order, so the JSONL
/// bytes and the merged metrics are bit-identical for every
/// TIMING_THREADS value.
struct MeasureObs {
  /// Record trace events and write them as JSONL here. Null means
  /// "consult TIMING_TRACE" (see TraceConfig::from_env); tracing is off
  /// when that is unset too.
  std::ostream* trace_out = nullptr;
  /// Merged per-trial metrics land here (null disables metrics).
  MetricsRegistry* metrics = nullptr;
  /// Per-trial event cap forwarded to BufferSink (0 = unbounded).
  std::size_t max_events_per_trial = 0;
};

/// Fans `num_runs` independent measurement runs out over the thread pool
/// (common/parallel.hpp). Results are indexed by run and — given a
/// thread-agnostic factory — identical for every TIMING_THREADS value.
/// The default-argument form honours TIMING_TRACE=<path>.
std::vector<RunMeasurement> measure_runs(int num_runs,
                                         const SamplerFactory& make_sampler,
                                         int rounds, ProcessId leader,
                                         const MeasureObs& obs = {});

struct DecisionWindow {
  double rounds = 0.0;   ///< rounds from the start point until conditions held
  bool censored = false; ///< the run ended before conditions held
};

/// First window of `needed` consecutive satisfying rounds at or after
/// `start` (0-based): returns (end_of_window - start + 1). Censored
/// results report the remaining run length (a lower bound).
DecisionWindow rounds_until_conditions(const std::vector<std::uint8_t>& sat,
                                       int start, int needed);

struct DecisionStats {
  double mean_rounds = 0.0;      ///< mean over start points (censored at cap)
  double censored_fraction = 0.0;
};

/// The paper's "15 random points of each run" average.
DecisionStats decision_stats(const std::vector<std::uint8_t>& sat, int needed,
                             int start_points, Rng& rng);

/// Streaming replacement for the sat-vector + rounds_until_conditions /
/// decision_stats pipeline: pre-draw the random start points, then feed
/// one satisfied/unsatisfied bit per round. A start point s resolves at
/// the first 0-based round i with a `needed`-long satisfied streak whose
/// window lies at or after s (i - needed + 1 >= s), yielding i - s + 1
/// rounds — exactly rounds_until_conditions(sat, s, needed). finalize()
/// averages in the original draw order, so the statistics are
/// bit-identical to the vector-based path while the run itself stores
/// nothing per round.
class ConsecutiveWindowTracker {
 public:
  /// `starts` in draw order (0-based round indices).
  ConsecutiveWindowTracker(int needed, std::vector<int> starts,
                           int total_rounds);

  /// Feed round (#prior calls, 0-based).
  void observe(bool satisfied) noexcept;

  /// Satisfied rounds seen so far (P_M numerator).
  long long satisfied_rounds() const noexcept { return sat_rounds_; }

  /// Mean/censored over the start points; unresolved points report the
  /// remaining run length (censored), like rounds_until_conditions.
  DecisionStats finalize() const;

 private:
  int needed_;
  int total_;
  int round_ = 0;
  int streak_ = 0;
  long long sat_rounds_ = 0;
  std::vector<int> starts_;            ///< draw order
  std::vector<std::size_t> by_start_;  ///< indices of starts_, ascending
  std::size_t next_ = 0;               ///< first unresolved entry of by_start_
  std::vector<double> rounds_;         ///< per draw-order index; -1 pending
};

/// One streamed measurement run: per-model P_M incidence and the mean
/// rounds-until-decision-conditions over `start_points` random start
/// points, computed without per-round vectors via the fused
/// sample-and-evaluate kernel. Statistically (and bit-for-bit) identical
/// to measure_run + incidence + decision_stats with the same sampler
/// sub-stream and `start_rng`, but the hot loop is one pass per round
/// over the packed bit plane. No tracing/metrics: this is the
/// zero-observability fast path the figure sweeps run on.
struct StreamedRun {
  long long messages_total = 0;
  long long messages_timely = 0;
  long long messages_late = 0;
  long long messages_lost = 0;
  std::array<double, kNumModels> pm{};           ///< P_M per model
  std::array<double, kNumModels> mean_rounds{};  ///< decision_stats mean
  std::array<double, kNumModels> censored{};     ///< censored fraction

  double timely_fraction() const noexcept {
    return messages_total
               ? static_cast<double>(messages_timely) / messages_total
               : 0.0;
  }
};

StreamedRun measure_run_streaming(TimelinessSampler& sampler, int rounds,
                                  ProcessId leader,
                                  const std::array<int, kNumModels>& needed,
                                  int start_points, Rng& start_rng);

/// measure_run_streaming under per-link timing assumptions: the sat bits
/// come from the granular predicates, and the run additionally reports
/// per-class conformance (the fraction of rounds in which every link of
/// each LinkModelClass was timely).
struct GranularStreamedRun {
  StreamedRun base;
  std::array<double, kNumLinkModelClasses> class_pm{};
};

/// The sampler's RNG is consumed in exactly the sample_round per-cell
/// order and the start points are pre-drawn in the same model-major order
/// as measure_run_streaming, so with an all-sync `g` the StreamedRun
/// fields are bit-identical to the homogeneous path on the same
/// sub-streams (tests/granular_test.cpp pins this).
GranularStreamedRun measure_run_streaming_granular(
    TimelinessSampler& sampler, int rounds, ProcessId leader,
    const std::array<int, kNumModels>& needed, int start_points,
    Rng& start_rng, const GranularContext& g);

}  // namespace timing

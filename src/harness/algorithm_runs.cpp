#include "harness/algorithm_runs.hpp"

#include <algorithm>
#include <memory>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "giraf/engine.hpp"
#include "oracles/omega.hpp"

namespace timing {

AlgorithmRunResult run_algorithm(const AlgorithmRunConfig& cfg) {
  const int n = cfg.schedule.n;
  TM_CHECK(static_cast<int>(cfg.proposals.size()) == n,
           "need one proposal per process");

  auto protocols = make_group(cfg.kind, cfg.proposals);
  const Round stable_from =
      cfg.oracle_stable_from >= 0 ? cfg.oracle_stable_from : cfg.schedule.gsr;
  auto oracle = std::make_shared<UnstableOracle>(
      n, cfg.schedule.leader, stable_from, cfg.schedule.seed ^ 0x9e37);

  RoundEngine engine(std::move(protocols), oracle);
  if (cfg.trace != nullptr) engine.set_trace_sink(cfg.trace);
  ScheduleConfig sched = cfg.schedule;
  if (!cfg.crashes.empty()) {
    TM_CHECK(static_cast<int>(cfg.crashes.size()) == n,
             "crashes must have n entries");
    for (ProcessId i = 0; i < n; ++i) {
      if (cfg.crashes[static_cast<std::size_t>(i)] > 0) {
        engine.crash_at(i, cfg.crashes[static_cast<std::size_t>(i)]);
      }
    }
    // The model guarantees timely links from CORRECT processes; the
    // schedule must know who is alive to honour that.
    sched.crash_rounds = cfg.crashes;
  }

  ScheduleSampler sampler(sched);
  const Round decided_at = engine.run(sampler, cfg.max_rounds);

  AlgorithmRunResult out;
  out.all_decided = decided_at >= 0;
  out.global_decision_round = decided_at;
  out.stable_round_messages = engine.messages_last_round();
  out.total_messages = engine.stats().messages_sent;
  out.engine = engine.stats();

  for (ProcessId i = 0; i < n; ++i) {
    const Protocol& p = engine.process(i);
    if (!p.has_decided()) continue;
    const Value d = p.decision();
    if (out.decided_value == kNoValue) {
      out.decided_value = d;
    } else if (out.decided_value != d) {
      out.agreement = false;
    }
    if (std::find(cfg.proposals.begin(), cfg.proposals.end(), d) ==
        cfg.proposals.end()) {
      out.validity = false;
    }
  }
  return out;
}

std::vector<AlgorithmRunResult> run_algorithms(
    const std::vector<AlgorithmRunConfig>& cfgs) {
  return run_trials<AlgorithmRunResult>(
      cfgs.size(), [&](std::size_t i) { return run_algorithm(cfgs[i]); });
}

}  // namespace timing

// Running the *actual* consensus protocols over GSR schedules - the
// validation side of the study: the figures use model predicates and the
// known round bounds; these runs confirm the implementations meet those
// bounds (e.g. Algorithm 2 deciding by GSR+4, or GSR+3 with a stable
// leader) and preserve agreement/validity under chaos.
#pragma once

#include <vector>

#include "consensus/factory.hpp"
#include "giraf/engine.hpp"
#include "models/schedule.hpp"
#include "obs/trace_sink.hpp"

namespace timing {

struct AlgorithmRunConfig {
  AlgorithmKind kind = AlgorithmKind::kWlm;
  ScheduleConfig schedule;
  /// Round from which the Omega oracle is stable; -1 means schedule.gsr
  /// (the model's minimum). Use schedule.gsr - 1 for the paper's
  /// stable-leader case (Theorem 10(b)).
  Round oracle_stable_from = -1;
  std::vector<Value> proposals;
  int max_rounds = 2000;
  /// Crash process i at round crashes[i] (0/negative = never). Must keep
  /// a correct majority and a correct leader.
  std::vector<Round> crashes;
  /// Optional trace sink (null = no tracing). Owned by the caller; for
  /// run_algorithms each config needs its own sink (trials run
  /// concurrently).
  TraceSink* trace = nullptr;
};

struct AlgorithmRunResult {
  bool all_decided = false;
  Round global_decision_round = -1;
  bool agreement = true;
  bool validity = true;
  Value decided_value = kNoValue;
  /// Messages sent in the final round (stable-state message complexity).
  long long stable_round_messages = 0;
  long long total_messages = 0;
  /// The engine's full delivery accounting (sent/timely/late/lost) —
  /// previously write-only inside the engine; exposed so bench summaries
  /// and tests can cross-check the run's timely fraction against the
  /// sampler-side view. total_messages == engine.messages_sent.
  EngineStats engine;
};

AlgorithmRunResult run_algorithm(const AlgorithmRunConfig& cfg);

/// Runs every configuration as an independent trial on the shared thread
/// pool (common/parallel.hpp). Results are indexed like the input; since
/// each run's randomness lives in its config seeds, the output is
/// identical for every TIMING_THREADS value.
std::vector<AlgorithmRunResult> run_algorithms(
    const std::vector<AlgorithmRunConfig>& cfgs);

}  // namespace timing

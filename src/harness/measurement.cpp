#include "harness/measurement.hpp"

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace timing {

double RunMeasurement::incidence(TimingModel m) const noexcept {
  const auto& s = sat[static_cast<std::size_t>(model_index(m))];
  if (s.empty()) return 0.0;
  long long c = 0;
  for (auto b : s) c += b ? 1 : 0;
  return static_cast<double>(c) / static_cast<double>(s.size());
}

RunMeasurement measure_run(TimelinessSampler& sampler, int rounds,
                           ProcessId leader) {
  TM_CHECK(rounds > 0, "need at least one round");
  RunMeasurement out;
  out.rounds = rounds;
  for (auto& s : out.sat) s.reserve(static_cast<std::size_t>(rounds));
  const int n = sampler.n();
  LinkMatrix a(n);
  for (int r = 1; r <= rounds; ++r) {
    sampler.sample_round(r, a);
    for (TimingModel m : kAllModels) {
      out.sat[static_cast<std::size_t>(model_index(m))].push_back(
          satisfies(m, a, leader) ? 1 : 0);
    }
    for (ProcessId d = 0; d < n; ++d) {
      for (ProcessId s = 0; s < n; ++s) {
        if (s == d) continue;
        ++out.messages_total;
        if (a.timely(d, s)) ++out.messages_timely;
      }
    }
  }
  return out;
}

std::vector<RunMeasurement> measure_runs(int num_runs,
                                         const SamplerFactory& make_sampler,
                                         int rounds, ProcessId leader) {
  TM_CHECK(num_runs > 0, "need at least one run");
  return run_trials<RunMeasurement>(
      static_cast<std::size_t>(num_runs), [&](std::size_t run) {
        auto sampler = make_sampler(static_cast<int>(run));
        TM_CHECK(sampler != nullptr, "sampler factory returned null");
        return measure_run(*sampler, rounds, leader);
      });
}

DecisionWindow rounds_until_conditions(const std::vector<std::uint8_t>& sat,
                                       int start, int needed) {
  TM_CHECK(needed >= 1, "window length must be positive");
  TM_CHECK(start >= 0, "start must be non-negative");
  const int len = static_cast<int>(sat.size());
  int streak = 0;
  for (int i = start; i < len; ++i) {
    streak = sat[static_cast<std::size_t>(i)] ? streak + 1 : 0;
    if (streak >= needed) {
      return DecisionWindow{static_cast<double>(i - start + 1), false};
    }
  }
  return DecisionWindow{static_cast<double>(len - start), true};
}

DecisionStats decision_stats(const std::vector<std::uint8_t>& sat, int needed,
                             int start_points, Rng& rng) {
  TM_CHECK(start_points > 0, "need at least one start point");
  const int len = static_cast<int>(sat.size());
  TM_CHECK(len > needed, "run shorter than the decision window");
  DecisionStats out;
  int censored = 0;
  double sum = 0.0;
  for (int s = 0; s < start_points; ++s) {
    // Start anywhere in the first half so a typical window can complete.
    const int start = static_cast<int>(rng.uniform_int(
        static_cast<std::uint64_t>(std::max(1, len / 2))));
    const DecisionWindow w = rounds_until_conditions(sat, start, needed);
    sum += w.rounds;
    if (w.censored) ++censored;
  }
  out.mean_rounds = sum / start_points;
  out.censored_fraction = static_cast<double>(censored) / start_points;
  return out;
}

}  // namespace timing

#include "harness/measurement.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "obs/jsonl.hpp"

namespace timing {

double RunMeasurement::incidence(TimingModel m) const noexcept {
  const auto& s = sat[static_cast<std::size_t>(model_index(m))];
  if (s.empty()) return 0.0;
  long long c = 0;
  for (auto b : s) c += b ? 1 : 0;
  return static_cast<double>(c) / static_cast<double>(s.size());
}

RunMeasurement measure_run(TimelinessSampler& sampler, int rounds,
                           ProcessId leader, TraceSink* trace,
                           MetricsRegistry* metrics) {
  TM_CHECK(rounds > 0, "need at least one round");
  RunMeasurement out;
  out.rounds = rounds;
  for (auto& s : out.sat) s.reserve(static_cast<std::size_t>(rounds));
  const int n = sampler.n();
  // One packed matrix per run, reused every round: the sample and
  // predicate phases both run on the bit plane.
  PackedLinkMatrix a(n);
  for (int r = 1; r <= rounds; ++r) {
    trace_emit(trace, TraceEvent::round_start(r));
    {
      PhaseTimer t(metrics, "phase.sample");
      sampler.sample_round(r, a);
    }
    // Message fates of the round's (virtual) all-to-all traffic. Self
    // links are excluded, matching the paper's p ("each process sent ...
    // to all others"). When tracing, walk cells in (dst, src) order so
    // the event stream is byte-identical to the historical scalar path;
    // otherwise tally from popcounts over the bit plane.
    if (trace != nullptr) {
      for (ProcessId d = 0; d < n; ++d) {
        for (ProcessId s = 0; s < n; ++s) {
          if (s == d) continue;
          ++out.messages_total;
          const Delay fate = a.at(d, s);
          if (fate == 0) {
            ++out.messages_timely;
            trace_emit(trace, TraceEvent::msg(EventKind::kMsgTimely, r, s, d));
          } else if (fate == kLost) {
            ++out.messages_lost;
            trace_emit(trace, TraceEvent::msg(EventKind::kMsgLost, r, s, d));
          } else {
            ++out.messages_late;
            trace_emit(trace,
                       TraceEvent::msg(EventKind::kMsgLate, r, s, d, fate));
          }
        }
      }
    } else {
      FusedRoundEval fates;
      tally_fates(a, fates);
      out.messages_total += static_cast<long long>(n) * (n - 1);
      out.messages_timely += fates.timely;
      out.messages_late += fates.late;
      out.messages_lost += fates.lost;
    }
    std::uint8_t mask = 0;
    {
      PhaseTimer t(metrics, "phase.predicates");
      mask = evaluate_all(a, leader, nullptr, trace, r);
    }
    for (TimingModel m : kAllModels) {
      const int idx = model_index(m);
      out.sat[static_cast<std::size_t>(idx)].push_back(
          (mask & (1u << idx)) ? 1 : 0);
    }
    trace_emit(trace, TraceEvent::round_end(r));
  }
  if (metrics != nullptr) {
    metrics->inc("rounds", rounds);
    metrics->inc("messages.total", out.messages_total);
    metrics->inc("messages.timely", out.messages_timely);
    metrics->inc("messages.late", out.messages_late);
    metrics->inc("messages.lost", out.messages_lost);
    for (TimingModel m : kAllModels) {
      const auto idx = static_cast<std::size_t>(model_index(m));
      long long sat = 0;
      for (auto b : out.sat[idx]) sat += b ? 1 : 0;
      metrics->inc(std::string("rounds.sat.") + to_string(m), sat);
    }
    metrics->observe("run.timely_fraction", out.timely_fraction());
  }
  return out;
}

std::vector<RunMeasurement> measure_runs(int num_runs,
                                         const SamplerFactory& make_sampler,
                                         int rounds, ProcessId leader,
                                         const MeasureObs& obs) {
  TM_CHECK(num_runs > 0, "need at least one run");

  // Resolve the trace destination: an explicit stream wins, otherwise
  // TIMING_TRACE=<path> (the off-by-default env knob).
  const TraceConfig env = TraceConfig::from_env();
  std::ofstream env_file;
  std::ostream* trace_out = obs.trace_out;
  std::size_t max_events = obs.max_events_per_trial;
  if (trace_out == nullptr && env.enabled()) {
    env_file.open(env.path, std::ios::trunc);
    TM_CHECK(env_file.good(), "cannot open TIMING_TRACE output file");
    trace_out = &env_file;
    if (max_events == 0) max_events = env.max_events_per_trial;
  }
  const bool tracing = trace_out != nullptr;
  const bool metering = obs.metrics != nullptr;

  // Per-trial private sinks/registries; pool threads never share one.
  std::vector<BufferSink> sinks;
  std::vector<MetricsRegistry> registries;
  if (tracing) {
    sinks.reserve(static_cast<std::size_t>(num_runs));
    for (int i = 0; i < num_runs; ++i) sinks.emplace_back(max_events);
  }
  if (metering) registries.resize(static_cast<std::size_t>(num_runs));

  // Each slot is written by exactly one trial, so the pool threads never
  // contend; read only after run_trials returns.
  std::vector<int> trial_n(static_cast<std::size_t>(num_runs), 0);

  auto result = run_trials<RunMeasurement>(
      static_cast<std::size_t>(num_runs), [&](std::size_t run) {
        auto sampler = make_sampler(static_cast<int>(run));
        TM_CHECK(sampler != nullptr, "sampler factory returned null");
        trial_n[run] = sampler->n();
        return measure_run(*sampler, rounds, leader,
                           tracing ? &sinks[run] : nullptr,
                           metering ? &registries[run] : nullptr);
      });

  // Drain in trial-index order on this thread: deterministic bytes and
  // deterministic metric folds regardless of the thread count. The header
  // carries the max n; trials that differ (e.g. a group-size sweep)
  // record their own n on the trial marker.
  if (tracing) {
    int max_n = 0;
    for (int n : trial_n) max_n = std::max(max_n, n);
    write_trace_header(*trace_out, max_n);
    for (int run = 0; run < num_runs; ++run) {
      const int n = trial_n[static_cast<std::size_t>(run)];
      write_trial(*trace_out, run,
                  sinks[static_cast<std::size_t>(run)].events(),
                  n == max_n ? 0 : n);
    }
    trace_out->flush();
  }
  if (metering) {
    for (const MetricsRegistry& r : registries) obs.metrics->merge(r);
  }
  return result;
}

DecisionWindow rounds_until_conditions(const std::vector<std::uint8_t>& sat,
                                       int start, int needed) {
  TM_CHECK(needed >= 1, "window length must be positive");
  TM_CHECK(start >= 0, "start must be non-negative");
  const int len = static_cast<int>(sat.size());
  int streak = 0;
  for (int i = start; i < len; ++i) {
    streak = sat[static_cast<std::size_t>(i)] ? streak + 1 : 0;
    if (streak >= needed) {
      return DecisionWindow{static_cast<double>(i - start + 1), false};
    }
  }
  return DecisionWindow{static_cast<double>(len - start), true};
}

DecisionStats decision_stats(const std::vector<std::uint8_t>& sat, int needed,
                             int start_points, Rng& rng) {
  TM_CHECK(start_points > 0, "need at least one start point");
  const int len = static_cast<int>(sat.size());
  TM_CHECK(len > needed, "run shorter than the decision window");
  DecisionStats out;
  int censored = 0;
  double sum = 0.0;
  for (int s = 0; s < start_points; ++s) {
    // Start anywhere in the first half so a typical window can complete.
    const int start = static_cast<int>(rng.uniform_int(
        static_cast<std::uint64_t>(std::max(1, len / 2))));
    const DecisionWindow w = rounds_until_conditions(sat, start, needed);
    sum += w.rounds;
    if (w.censored) ++censored;
  }
  out.mean_rounds = sum / start_points;
  out.censored_fraction = static_cast<double>(censored) / start_points;
  return out;
}

ConsecutiveWindowTracker::ConsecutiveWindowTracker(int needed,
                                                   std::vector<int> starts,
                                                   int total_rounds)
    : needed_(needed), total_(total_rounds), starts_(std::move(starts)),
      rounds_(starts_.size(), -1.0) {
  TM_CHECK(needed_ >= 1, "window length must be positive");
  TM_CHECK(total_ > needed_, "run shorter than the decision window");
  by_start_.resize(starts_.size());
  for (std::size_t j = 0; j < starts_.size(); ++j) {
    TM_CHECK(starts_[j] >= 0 && starts_[j] < total_,
             "start point out of range");
    by_start_[j] = j;
  }
  std::sort(by_start_.begin(), by_start_.end(),
            [this](std::size_t a, std::size_t b) {
              return starts_[a] != starts_[b] ? starts_[a] < starts_[b]
                                              : a < b;
            });
}

void ConsecutiveWindowTracker::observe(bool satisfied) noexcept {
  const int i = round_++;
  if (!satisfied) {
    streak_ = 0;
    return;
  }
  ++sat_rounds_;
  ++streak_;
  if (streak_ < needed_) return;
  // A `needed`-long satisfied window ends at round i. Every pending start
  // point at or before the window's first round resolves here with
  // i - start + 1 rounds — the same value rounds_until_conditions returns,
  // because a streak that began before `start` still leaves a full window
  // inside [start, i] whenever start <= i - needed + 1.
  const int cutoff = i - needed_ + 1;
  while (next_ < by_start_.size() && starts_[by_start_[next_]] <= cutoff) {
    const std::size_t j = by_start_[next_++];
    rounds_[j] = static_cast<double>(i - starts_[j] + 1);
  }
}

DecisionStats ConsecutiveWindowTracker::finalize() const {
  TM_CHECK(!starts_.empty(), "need at least one start point");
  DecisionStats out;
  int censored = 0;
  double sum = 0.0;
  // Accumulate in the original draw order so the floating-point sum is
  // bit-identical to decision_stats over the materialised sat vector.
  for (std::size_t j = 0; j < starts_.size(); ++j) {
    if (rounds_[j] >= 0.0) {
      sum += rounds_[j];
    } else {
      sum += static_cast<double>(total_ - starts_[j]);  // censored bound
      ++censored;
    }
  }
  const int start_points = static_cast<int>(starts_.size());
  out.mean_rounds = sum / start_points;
  out.censored_fraction = static_cast<double>(censored) / start_points;
  return out;
}

StreamedRun measure_run_streaming(TimelinessSampler& sampler, int rounds,
                                  ProcessId leader,
                                  const std::array<int, kNumModels>& needed,
                                  int start_points, Rng& start_rng) {
  TM_CHECK(rounds > 0, "need at least one round");
  TM_CHECK(start_points > 0, "need at least one start point");
  const int n = sampler.n();

  // Pre-draw the start points in exactly the order the vector-based path
  // consumes them (model-major, kAllModels order), so the same `start_rng`
  // sub-stream yields the same points.
  std::vector<ConsecutiveWindowTracker> track;
  track.reserve(kNumModels);
  for (TimingModel m : kAllModels) {
    const int idx = model_index(m);
    std::vector<int> starts(static_cast<std::size_t>(start_points));
    for (int s = 0; s < start_points; ++s) {
      // Start anywhere in the first half so a typical window can complete.
      starts[static_cast<std::size_t>(s)] = static_cast<int>(
          start_rng.uniform_int(
              static_cast<std::uint64_t>(std::max(1, rounds / 2))));
    }
    track.emplace_back(needed[static_cast<std::size_t>(idx)],
                       std::move(starts), rounds);
  }

  StreamedRun out;
  PackedLinkMatrix a(n);
  ColumnDeficits cols;
  for (int r = 1; r <= rounds; ++r) {
    const FusedRoundEval e =
        sampler.sample_round_and_evaluate(r, leader, a, cols);
    out.messages_total += static_cast<long long>(n) * (n - 1);
    out.messages_timely += e.timely;
    out.messages_late += e.late;
    out.messages_lost += e.lost;
    for (TimingModel m : kAllModels) {
      const int idx = model_index(m);
      track[static_cast<std::size_t>(idx)].observe(
          (e.mask & (1u << idx)) != 0);
    }
  }

  for (TimingModel m : kAllModels) {
    const int idx = model_index(m);
    const auto& t = track[static_cast<std::size_t>(idx)];
    const DecisionStats ds = t.finalize();
    out.pm[static_cast<std::size_t>(idx)] =
        static_cast<double>(t.satisfied_rounds()) /
        static_cast<double>(rounds);
    out.mean_rounds[static_cast<std::size_t>(idx)] = ds.mean_rounds;
    out.censored[static_cast<std::size_t>(idx)] = ds.censored_fraction;
  }
  return out;
}

GranularStreamedRun measure_run_streaming_granular(
    TimelinessSampler& sampler, int rounds, ProcessId leader,
    const std::array<int, kNumModels>& needed, int start_points,
    Rng& start_rng, const GranularContext& g) {
  TM_CHECK(rounds > 0, "need at least one round");
  TM_CHECK(start_points > 0, "need at least one start point");
  const int n = sampler.n();
  TM_CHECK(n == g.n(), "link-model matrix size must match the sampler");

  // Identical pre-draw to measure_run_streaming: model-major, kAllModels
  // order, uniform over the first half of the run.
  std::vector<ConsecutiveWindowTracker> track;
  track.reserve(kNumModels);
  for (TimingModel m : kAllModels) {
    const int idx = model_index(m);
    std::vector<int> starts(static_cast<std::size_t>(start_points));
    for (int s = 0; s < start_points; ++s) {
      starts[static_cast<std::size_t>(s)] = static_cast<int>(
          start_rng.uniform_int(
              static_cast<std::uint64_t>(std::max(1, rounds / 2))));
    }
    track.emplace_back(needed[static_cast<std::size_t>(idx)],
                       std::move(starts), rounds);
  }

  GranularStreamedRun out;
  std::array<long long, kNumLinkModelClasses> class_sat{};
  PackedLinkMatrix a(n);
  for (int r = 1; r <= rounds; ++r) {
    // Plain packed sample (per-cell RNG order equals the fused kernel's),
    // then the one-sweep granular evaluation and a fate tally. With an
    // all-sync matrix the sat mask equals the homogeneous fused mask.
    sampler.sample_round(r, a);
    FusedRoundEval fates;
    tally_fates(a, fates);
    out.base.messages_total += static_cast<long long>(n) * (n - 1);
    out.base.messages_timely += fates.timely;
    out.base.messages_late += fates.late;
    out.base.messages_lost += fates.lost;
    const GranularEval e = evaluate_all_granular(a, leader, g);
    for (TimingModel m : kAllModels) {
      const int idx = model_index(m);
      track[static_cast<std::size_t>(idx)].observe(
          (e.sat & (1u << idx)) != 0);
    }
    for (int c = 0; c < kNumLinkModelClasses; ++c) {
      if (e.csat & (1u << c)) ++class_sat[static_cast<std::size_t>(c)];
    }
  }

  for (TimingModel m : kAllModels) {
    const int idx = model_index(m);
    const auto& t = track[static_cast<std::size_t>(idx)];
    const DecisionStats ds = t.finalize();
    out.base.pm[static_cast<std::size_t>(idx)] =
        static_cast<double>(t.satisfied_rounds()) /
        static_cast<double>(rounds);
    out.base.mean_rounds[static_cast<std::size_t>(idx)] = ds.mean_rounds;
    out.base.censored[static_cast<std::size_t>(idx)] = ds.censored_fraction;
  }
  for (int c = 0; c < kNumLinkModelClasses; ++c) {
    out.class_pm[static_cast<std::size_t>(c)] =
        static_cast<double>(class_sat[static_cast<std::size_t>(c)]) /
        static_cast<double>(rounds);
  }
  return out;
}

}  // namespace timing

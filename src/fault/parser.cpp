#include "fault/parser.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/parse.hpp"

namespace timing::fault {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

/// Whitespace-separated tokens of one statement.
std::vector<std::string> tokenize(const std::string& stmt) {
  std::vector<std::string> out;
  std::istringstream is(stmt);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

bool parse_pid(const std::string& s, ProcessId& out) {
  int v = 0;
  if (!parse_int(s, v) || v < 0) return false;
  out = v;
  return true;
}

/// 'p' or the '*' wildcard (-> kNoProcess).
bool parse_endpoint(const std::string& s, ProcessId& out) {
  if (s == "*") {
    out = kNoProcess;
    return true;
  }
  return parse_pid(s, out);
}

/// "@<r>" single round.
bool parse_at_round(const std::string& tok, Round& out) {
  if (tok.size() < 2 || tok[0] != '@') return false;
  int v = 0;
  if (!parse_int(tok.substr(1), v)) return false;
  out = v;
  return true;
}

/// "@<from>..<to>" half-open window.
bool parse_at_window(const std::string& tok, Round& from, Round& to) {
  if (tok.size() < 2 || tok[0] != '@') return false;
  const std::string body = tok.substr(1);
  const std::size_t dots = body.find("..");
  if (dots == std::string::npos) return false;
  int a = 0, b = 0;
  if (!parse_int(body.substr(0, dots), a)) return false;
  if (!parse_int(body.substr(dots + 2), b)) return false;
  from = a;
  to = b;
  return true;
}

/// "<src|*>-><dst|*>" link designator.
bool parse_link(const std::string& tok, ProcessId& src, ProcessId& dst) {
  const std::size_t arrow = tok.find("->");
  if (arrow == std::string::npos) return false;
  return parse_endpoint(tok.substr(0, arrow), src) &&
         parse_endpoint(tok.substr(arrow + 2), dst);
}

/// One statement -> event; "" or the reason.
std::string parse_statement(const std::string& stmt, FaultEvent& e) {
  const std::vector<std::string> tok = tokenize(stmt);
  if (tok.empty()) return "empty statement";
  const std::string& kw = tok[0];

  if (kw == "crash" || kw == "recover") {
    e.kind = kw == "crash" ? FaultKind::kCrash : FaultKind::kRecover;
    if (tok.size() != 3) return "expected '" + kw + " <p> @<round>'";
    if (!parse_pid(tok[1], e.proc)) return "bad process id '" + tok[1] + "'";
    if (!parse_at_round(tok[2], e.from)) {
      return "bad round '" + tok[2] + "' (expected @<round>)";
    }
    return "";
  }

  if (kw == "partition") {
    e.kind = FaultKind::kPartition;
    if (tok.size() != 3) {
      return "expected 'partition <g0>|<g1>[|...] @<from>..<to>'";
    }
    for (const std::string& group : split(tok[1], '|')) {
      std::vector<ProcessId> members;
      for (const std::string& id : split(group, ',')) {
        ProcessId p = kNoProcess;
        if (!parse_pid(id, p)) return "bad process id '" + id + "'";
        members.push_back(p);
      }
      e.groups.push_back(std::move(members));
    }
    if (!parse_at_window(tok[2], e.from, e.to)) {
      return "bad window '" + tok[2] + "' (expected @<from>..<to>)";
    }
    return "";
  }

  if (kw == "drop") {
    e.kind = FaultKind::kDrop;
    if (tok.size() != 3 && tok.size() != 4) {
      return "expected 'drop <src>-><dst> @<from>..<to> [p=<prob>]'";
    }
    if (!parse_link(tok[1], e.src, e.dst)) {
      return "bad link '" + tok[1] + "' (expected <src|*>-><dst|*>)";
    }
    if (!parse_at_window(tok[2], e.from, e.to)) {
      return "bad window '" + tok[2] + "' (expected @<from>..<to>)";
    }
    if (tok.size() == 4) {
      if (tok[3].rfind("p=", 0) != 0 ||
          !parse_double(tok[3].substr(2), e.prob)) {
        return "bad probability '" + tok[3] + "' (expected p=<prob>)";
      }
    }
    return "";
  }

  if (kw == "delay") {
    e.kind = FaultKind::kDelay;
    if (tok.size() != 4) {
      return "expected 'delay <src>-><dst> +<ms>ms @<from>..<to>'";
    }
    if (!parse_link(tok[1], e.src, e.dst)) {
      return "bad link '" + tok[1] + "' (expected <src|*>-><dst|*>)";
    }
    const std::string& amt = tok[2];
    if (amt.size() < 4 || amt[0] != '+' ||
        amt.compare(amt.size() - 2, 2, "ms") != 0 ||
        !parse_double(amt.substr(1, amt.size() - 3), e.extra_ms)) {
      return "bad amount '" + amt + "' (expected +<ms>ms)";
    }
    if (!parse_at_window(tok[3], e.from, e.to)) {
      return "bad window '" + tok[3] + "' (expected @<from>..<to>)";
    }
    return "";
  }

  if (kw == "suppress_leader") {
    e.kind = FaultKind::kSuppressLeader;
    if (tok.size() != 2) return "expected 'suppress_leader @<from>..<to>'";
    if (!parse_at_window(tok[1], e.from, e.to)) {
      return "bad window '" + tok[1] + "' (expected @<from>..<to>)";
    }
    return "";
  }

  if (kw == "gsr") {
    e.kind = FaultKind::kGsr;
    if (tok.size() != 2) return "expected 'gsr @<round>'";
    if (!parse_at_round(tok[1], e.from)) {
      return "bad round '" + tok[1] + "' (expected @<round>)";
    }
    return "";
  }

  return "unknown statement '" + kw +
         "' (known: crash, recover, partition, drop, delay, "
         "suppress_leader, gsr)";
}

ParseResult parse_with_locations(const std::string& text,
                                 const char* unit_name) {
  ParseResult out;
  out.plan.source = text;
  const bool by_line = std::string(unit_name) == "line";
  std::size_t line_no = 0;
  std::size_t stmt_no = 0;
  for (const std::string& full_line : split(text, '\n')) {
    ++line_no;
    // A '#' comments out the rest of the LINE, before statement
    // splitting — otherwise a ';' inside a comment would smuggle the
    // trailing text back in as a statement.
    std::string line = full_line;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    for (const std::string& raw : split(line, ';')) {
      ++stmt_no;
      std::string stmt = trim(raw);
      if (stmt.empty()) continue;
      FaultEvent e;
      const std::string err = parse_statement(stmt, e);
      if (!err.empty()) {
        out.error = std::string(unit_name) + " " +
                    std::to_string(by_line ? line_no : stmt_no) + ": " + err;
        return out;
      }
      if (e.kind == FaultKind::kGsr) out.plan.gsr = e.from;
      out.plan.events.push_back(std::move(e));
    }
  }
  return out;
}

}  // namespace

ParseResult parse_fault_plan(const std::string& text) {
  // ';' never spans lines, so with pure-newline input each unit index is
  // exactly the 1-based line number.
  const bool inline_form = text.find('\n') == std::string::npos &&
                           text.find(';') != std::string::npos;
  return parse_with_locations(text, inline_form ? "statement" : "line");
}

ParseResult load_fault_plan(const std::string& value) {
  std::ifstream in(value);
  if (in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    ParseResult out = parse_with_locations(buf.str(), "line");
    if (!out.ok()) out.error = value + ": " + out.error;
    return out;
  }
  return parse_fault_plan(value);
}

}  // namespace timing::fault

#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace timing::fault {

namespace {

constexpr Round kForever = std::numeric_limits<Round>::max();

/// Cap on injected lateness: far beyond any run horizon, far below the
/// int16 fate range.
constexpr Delay kMaxInjectedDelay = 16384;

bool in_window(Round k, Round from, Round to) noexcept {
  return k >= from && k < to;
}

/// Counter-based coin for drop rules: a pure function of (plan seed,
/// rule index, round, src, dst), so both backends — and every thread
/// count — flip the exact same coins. Fields are packed disjointly
/// (rounds < 2^24, pids < 2^20 in practice) and pushed through two
/// splitmix rounds via substream_seed.
double drop_coin(std::uint64_t seed, std::size_t rule, Round k,
                 ProcessId src, ProcessId dst) noexcept {
  const std::uint64_t cell = (static_cast<std::uint64_t>(k) << 40) ^
                             (static_cast<std::uint64_t>(src) << 20) ^
                             static_cast<std::uint64_t>(dst);
  std::uint64_t state = substream_seed(substream_seed(seed, rule), cell);
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

/// Membership lookup: index of p's group, or -1 when p is in none.
int group_of(const std::vector<std::vector<ProcessId>>& groups, ProcessId p) {
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (ProcessId q : groups[g]) {
      if (q == p) return static_cast<int>(g);
    }
  }
  return -1;
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, const InjectorConfig& cfg)
    : plan_(plan), cfg_(cfg) {
  TM_CHECK(cfg_.n >= 2, "injector needs n >= 2");
  TM_CHECK(cfg_.round_ms > 0.0, "round_ms must be positive");

  first_active_ = kForever;
  last_active_ = 0;
  perm_from_min_ = kForever;
  auto cover = [&](Round from, Round to) {
    first_active_ = std::min(first_active_, from);
    last_active_ = std::max(last_active_, to);
  };

  for (const FaultEvent& e : plan_.events) {
    switch (e.kind) {
      case FaultKind::kCrash:
        crash_spans_.push_back(CrashSpan{e.proc, e.from, kForever});
        cover(e.from, e.from + 1);
        break;
      case FaultKind::kRecover:
        for (CrashSpan& cs : crash_spans_) {
          if (cs.proc == e.proc && cs.to == kForever) cs.to = e.from;
        }
        cover(e.from, e.from + 1);
        break;
      case FaultKind::kPartition:
      case FaultKind::kDrop:
      case FaultKind::kDelay:
      case FaultKind::kSuppressLeader:
        cover(e.from, e.to);
        break;
      case FaultKind::kGsr:
        cover(e.from, e.from + 1);
        break;
    }
  }
  for (const CrashSpan& cs : crash_spans_) {
    if (cs.to == kForever) {
      has_permanent_ = true;
      perm_from_min_ = std::min(perm_from_min_, cs.from);
    } else {
      cover(cs.from, cs.to);
    }
  }
}

bool FaultInjector::active_in(Round k) const noexcept {
  return (k >= first_active_ && k < last_active_) ||
         (has_permanent_ && k >= perm_from_min_);
}

bool FaultInjector::crashed_in(ProcessId p, Round k) const noexcept {
  for (const CrashSpan& cs : crash_spans_) {
    if (cs.proc == p && in_window(k, cs.from, cs.to)) return true;
  }
  return false;
}

bool FaultInjector::partitioned(ProcessId src, ProcessId dst,
                                Round k) const noexcept {
  for (const FaultEvent& e : plan_.events) {
    if (e.kind != FaultKind::kPartition || !in_window(k, e.from, e.to)) {
      continue;
    }
    const int gs = group_of(e.groups, src);
    const int gd = group_of(e.groups, dst);
    if (gs >= 0 && gd >= 0 && gs != gd) return true;
  }
  return false;
}

bool FaultInjector::suppressed(ProcessId src, Round k) const noexcept {
  if (src != cfg_.leader) return false;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kSuppressLeader && in_window(k, e.from, e.to)) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::drop_fires(Round k, ProcessId src,
                               ProcessId dst) const noexcept {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.kind != FaultKind::kDrop || !in_window(k, e.from, e.to)) continue;
    if (e.src != kNoProcess && e.src != src) continue;
    if (e.dst != kNoProcess && e.dst != dst) continue;
    if (drop_coin(cfg_.seed, i, k, src, dst) < e.prob) return true;
  }
  return false;
}

double FaultInjector::extra_delay_ms(Round k, ProcessId src,
                                     ProcessId dst) const noexcept {
  double ms = 0.0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind != FaultKind::kDelay || !in_window(k, e.from, e.to)) continue;
    if (e.src != kNoProcess && e.src != src) continue;
    if (e.dst != kNoProcess && e.dst != dst) continue;
    ms += e.extra_ms;
  }
  return ms;
}

Delay FaultInjector::link_fate(Round k, ProcessId src,
                               ProcessId dst) const noexcept {
  if (src == dst) return 0;
  if (crashed_in(src, k) || crashed_in(dst, k) || partitioned(src, dst, k) ||
      suppressed(src, k) || drop_fires(k, src, dst)) {
    return kLost;
  }
  const double ms = extra_delay_ms(k, src, dst);
  if (ms <= 0.0) return 0;
  const double rounds = std::ceil(ms / cfg_.round_ms);
  return static_cast<Delay>(std::min<double>(
      std::max(1.0, rounds), static_cast<double>(kMaxInjectedDelay)));
}

void FaultInjector::emit_transitions(Round k) {
  if (cfg_.sink == nullptr) return;
  for (const FaultEvent& e : plan_.events) {
    if (e.from != k) continue;
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRecover:
        trace_emit(cfg_.sink, TraceEvent::fault(
                                  k, static_cast<std::uint8_t>(e.kind),
                                  e.proc));
        break;
      case FaultKind::kGsr:
        trace_emit(cfg_.sink,
                   TraceEvent::fault(k, static_cast<std::uint8_t>(e.kind)));
        break;
      default:
        break;
    }
  }
}

template <class Matrix>
void FaultInjector::apply_impl(Round k, Matrix& a) {
  const int n = cfg_.n;
  TM_CHECK(a.n() == n, "matrix size does not match injector config");
  emit_transitions(k);

  // Crash isolation: the process is neither heard from nor hears anyone
  // (its self link stays timely; it simply takes steps into a void).
  for (const CrashSpan& cs : crash_spans_) {
    if (!in_window(k, cs.from, cs.to)) continue;
    for (ProcessId q = 0; q < n; ++q) {
      if (q == cs.proc) continue;
      a.set(cs.proc, q, kLost);
      a.set(q, cs.proc, kLost);
    }
  }

  // Windowed rules, in plan order; per-cell loops in fixed (src, dst)
  // order, so the emission sequence is deterministic.
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    switch (e.kind) {
      case FaultKind::kPartition: {
        if (!in_window(k, e.from, e.to)) break;
        trace_emit(cfg_.sink,
                   TraceEvent::fault(k, static_cast<std::uint8_t>(e.kind)));
        for (std::size_t g = 0; g < e.groups.size(); ++g) {
          for (std::size_t h = 0; h < e.groups.size(); ++h) {
            if (g == h) continue;
            for (ProcessId src : e.groups[g]) {
              for (ProcessId dst : e.groups[h]) {
                a.set(dst, src, kLost);
              }
            }
          }
        }
        break;
      }
      case FaultKind::kSuppressLeader: {
        if (!in_window(k, e.from, e.to) || cfg_.leader == kNoProcess) break;
        trace_emit(cfg_.sink,
                   TraceEvent::fault(k, static_cast<std::uint8_t>(e.kind),
                                     cfg_.leader));
        for (ProcessId dst = 0; dst < n; ++dst) {
          if (dst != cfg_.leader) a.set(dst, cfg_.leader, kLost);
        }
        break;
      }
      case FaultKind::kDrop: {
        if (!in_window(k, e.from, e.to)) break;
        for (ProcessId src = 0; src < n; ++src) {
          if (e.src != kNoProcess && e.src != src) continue;
          for (ProcessId dst = 0; dst < n; ++dst) {
            if (dst == src) continue;
            if (e.dst != kNoProcess && e.dst != dst) continue;
            if (drop_coin(cfg_.seed, i, k, src, dst) >= e.prob) continue;
            if (a.at(dst, src) == kLost) continue;  // nothing to drop
            a.set(dst, src, kLost);
            trace_emit(cfg_.sink,
                       TraceEvent::fault(k, static_cast<std::uint8_t>(e.kind),
                                         kNoProcess, src, dst));
          }
        }
        break;
      }
      case FaultKind::kDelay: {
        if (!in_window(k, e.from, e.to)) break;
        const double rounds = std::ceil(e.extra_ms / cfg_.round_ms);
        const Delay extra = static_cast<Delay>(std::min<double>(
            std::max(1.0, rounds), static_cast<double>(kMaxInjectedDelay)));
        for (ProcessId src = 0; src < n; ++src) {
          if (e.src != kNoProcess && e.src != src) continue;
          for (ProcessId dst = 0; dst < n; ++dst) {
            if (dst == src) continue;
            if (e.dst != kNoProcess && e.dst != dst) continue;
            const Delay cur = a.at(dst, src);
            if (cur == kLost) continue;  // lost stays lost
            const Delay nd = static_cast<Delay>(
                std::min<int>(cur + extra, kMaxInjectedDelay));
            a.set(dst, src, nd);
            trace_emit(cfg_.sink,
                       TraceEvent::fault(k, static_cast<std::uint8_t>(e.kind),
                                         kNoProcess, src, dst, extra));
          }
        }
        break;
      }
      default:
        break;
    }
  }
}

void FaultInjector::apply(Round k, LinkMatrix& a) { apply_impl(k, a); }
void FaultInjector::apply(Round k, PackedLinkMatrix& a) { apply_impl(k, a); }

void FaultInjectedSampler::sample_round(Round k, LinkMatrix& out) {
  inner_.sample_round(k, out);
  if (injector_.active_in(k)) injector_.apply(k, out);
}

void FaultInjectedSampler::sample_round(Round k, PackedLinkMatrix& out) {
  inner_.sample_round(k, out);
  if (injector_.active_in(k)) injector_.apply(k, out);
}

FusedRoundEval FaultInjectedSampler::sample_round_and_evaluate(
    Round k, ProcessId leader, PackedLinkMatrix& out, ColumnDeficits& cols) {
  // No-fault rounds stay on the inner fused kernel, byte for byte.
  if (!injector_.active_in(k)) {
    return inner_.sample_round_and_evaluate(k, leader, out, cols);
  }
  inner_.sample_round(k, out);
  injector_.apply(k, out);
  FusedRoundEval eval;
  eval.mask = packed_evaluate_mask(out, leader, cols);
  tally_fates(out, eval);
  return eval;
}

}  // namespace timing::fault

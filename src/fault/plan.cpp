#include "fault/plan.hpp"

#include <algorithm>
#include <cstring>
#include <set>
#include <sstream>

namespace timing::fault {

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRecover: return "recover";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kSuppressLeader: return "suppress_leader";
    case FaultKind::kGsr: return "gsr";
  }
  return "?";
}

namespace {

std::string endpoint(ProcessId p) {
  return p == kNoProcess ? "*" : std::to_string(p);
}

/// Shortest decimal that reparses to exactly `v` (probabilities and
/// millisecond amounts): plan specs are replay keys, so a spec()/parse
/// round trip must not perturb a single drop coin threshold.
std::string num(double v) {
  for (int prec = 6; prec <= 17; ++prec) {
    std::ostringstream os;
    os.precision(prec);
    os << v;
    if (std::stod(os.str()) == v) return os.str();
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::string FaultEvent::spec() const {
  std::ostringstream os;
  switch (kind) {
    case FaultKind::kCrash:
    case FaultKind::kRecover:
      os << to_string(kind) << " " << proc << " @" << from;
      break;
    case FaultKind::kPartition: {
      os << "partition ";
      for (std::size_t g = 0; g < groups.size(); ++g) {
        if (g) os << "|";
        for (std::size_t i = 0; i < groups[g].size(); ++i) {
          if (i) os << ",";
          os << groups[g][i];
        }
      }
      os << " @" << from << ".." << to;
      break;
    }
    case FaultKind::kDrop:
      os << "drop " << endpoint(src) << "->" << endpoint(dst) << " @" << from
         << ".." << to;
      if (prob < 1.0) os << " p=" << num(prob);
      break;
    case FaultKind::kDelay:
      os << "delay " << endpoint(src) << "->" << endpoint(dst) << " +"
         << num(extra_ms) << "ms @" << from << ".." << to;
      break;
    case FaultKind::kSuppressLeader:
      os << "suppress_leader @" << from << ".." << to;
      break;
    case FaultKind::kGsr:
      os << "gsr @" << from;
      break;
  }
  return os.str();
}

std::string FaultPlan::spec() const {
  std::string out;
  for (const FaultEvent& e : events) {
    out += e.spec();
    out += "\n";
  }
  return out;
}

namespace {

bool windowed(FaultKind k) noexcept {
  return k == FaultKind::kPartition || k == FaultKind::kDrop ||
         k == FaultKind::kDelay || k == FaultKind::kSuppressLeader;
}

std::string event_err(std::size_t i, const FaultEvent& e,
                      const std::string& why) {
  return "event " + std::to_string(i + 1) + " (" + e.spec() + "): " + why;
}

}  // namespace

std::string validate(const FaultPlan& plan, int n, ProcessId leader) {
  if (n < 2) return "plan needs a group of n >= 2 processes";
  auto pid_ok = [&](ProcessId p) { return p >= 0 && p < n; };

  // Crash state machine per process: round of the open crash, or -1.
  std::vector<Round> open_crash(static_cast<std::size_t>(n), -1);
  std::vector<bool> dead(static_cast<std::size_t>(n), false);
  bool saw_gsr = false;

  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& e = plan.events[i];
    if (saw_gsr) return event_err(i, e, "events after the gsr marker");

    if (windowed(e.kind)) {
      if (e.from < 1) return event_err(i, e, "windows start at round 1");
      if (e.to <= e.from) {
        return event_err(i, e, "window [from, to) must be non-empty");
      }
    } else {
      if (e.from < 1) return event_err(i, e, "rounds start at 1");
    }

    switch (e.kind) {
      case FaultKind::kCrash: {
        if (!pid_ok(e.proc)) return event_err(i, e, "process out of range");
        auto& open = open_crash[static_cast<std::size_t>(e.proc)];
        if (open >= 0 || dead[static_cast<std::size_t>(e.proc)]) {
          return event_err(i, e, "process is already crashed");
        }
        open = e.from;
        dead[static_cast<std::size_t>(e.proc)] = true;
        break;
      }
      case FaultKind::kRecover: {
        if (!pid_ok(e.proc)) return event_err(i, e, "process out of range");
        auto& open = open_crash[static_cast<std::size_t>(e.proc)];
        if (open < 0) {
          return event_err(i, e, "recover without a preceding crash");
        }
        if (e.from <= open) {
          return event_err(i, e, "recover must come after its crash round");
        }
        open = -1;
        dead[static_cast<std::size_t>(e.proc)] = false;
        break;
      }
      case FaultKind::kPartition: {
        if (e.groups.size() < 2) {
          return event_err(i, e, "partition needs at least two groups");
        }
        std::set<ProcessId> seen;
        for (const auto& g : e.groups) {
          if (g.empty()) return event_err(i, e, "empty partition group");
          for (ProcessId p : g) {
            if (!pid_ok(p)) return event_err(i, e, "process out of range");
            if (!seen.insert(p).second) {
              return event_err(i, e, "process listed in two groups");
            }
          }
        }
        break;
      }
      case FaultKind::kDrop:
      case FaultKind::kDelay:
        if (e.src != kNoProcess && !pid_ok(e.src)) {
          return event_err(i, e, "src out of range");
        }
        if (e.dst != kNoProcess && !pid_ok(e.dst)) {
          return event_err(i, e, "dst out of range");
        }
        if (e.src != kNoProcess && e.src == e.dst) {
          return event_err(i, e, "src and dst must differ (self links are "
                                 "always timely)");
        }
        if (e.kind == FaultKind::kDrop && (e.prob < 0.0 || e.prob > 1.0)) {
          return event_err(i, e, "drop probability must be in [0, 1]");
        }
        if (e.kind == FaultKind::kDelay && e.extra_ms <= 0.0) {
          return event_err(i, e, "delay must be positive");
        }
        break;
      case FaultKind::kSuppressLeader:
        break;
      case FaultKind::kGsr:
        saw_gsr = true;
        break;
    }
  }

  if (saw_gsr != (plan.gsr >= 1)) {
    return "plan.gsr does not match the gsr marker event";
  }
  if (plan.gsr >= 1) {
    // Nothing the plan injects may outlive stabilization: from the gsr
    // round on, only processes that crashed for good (and thus are not
    // "correct") may still be unheard from.
    for (std::size_t i = 0; i + 1 < plan.events.size(); ++i) {
      const FaultEvent& e = plan.events[i];
      if (windowed(e.kind) && e.to > plan.gsr) {
        return event_err(i, e, "window extends past the gsr marker");
      }
      if (e.kind == FaultKind::kCrash && e.from >= plan.gsr) {
        return event_err(i, e, "crash at or after the gsr marker");
      }
      if (e.kind == FaultKind::kRecover && e.from > plan.gsr) {
        return event_err(i, e, "recovery after the gsr marker");
      }
    }
    // Post-gsr conformance needs a correct leader and a correct majority.
    int permanently_dead = 0;
    for (ProcessId p = 0; p < n; ++p) {
      if (open_crash[static_cast<std::size_t>(p)] < 0) continue;
      ++permanently_dead;
      if (p == leader) {
        return "the leader (" + std::to_string(leader) +
               ") crashes without recovering; post-gsr rounds cannot "
               "conform to a leader-based model";
      }
    }
    if (n - permanently_dead < majority_size(n)) {
      return "permanent crashes leave no correct majority (" +
             std::to_string(n - permanently_dead) + " of " +
             std::to_string(n) + " alive)";
    }
  }
  return "";
}

std::string timeline(const FaultPlan& plan) {
  std::vector<std::size_t> order(plan.events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return plan.events[a].from < plan.events[b].from;
                   });
  std::string out;
  for (std::size_t i : order) {
    const FaultEvent& e = plan.events[i];
    std::string when =
        windowed(e.kind)
            ? "rounds " + std::to_string(e.from) + ".." +
                  std::to_string(e.to - 1)
            : "round  " + std::to_string(e.from);
    if (when.size() < 15) when.resize(15, ' ');
    out += "  " + when + " " + e.spec() + "\n";
  }
  return out;
}

bool structurally_equal(const FaultPlan& a, const FaultPlan& b) noexcept {
  return a.gsr == b.gsr && a.events == b.events;
}

namespace {

void hash_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  // FNV-1a over the value's 8 bytes, little-endian by construction.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
}

std::uint64_t double_bits(double d) noexcept {
  // +0.0 and -0.0 compare equal but differ in bits; canonicalize so
  // structurally_equal plans always hash identically.
  if (d == 0.0) d = 0.0;
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

std::uint64_t plan_hash(const FaultPlan& plan) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  hash_mix(h, static_cast<std::uint64_t>(plan.gsr) + 1);
  for (const FaultEvent& e : plan.events) {
    hash_mix(h, static_cast<std::uint64_t>(e.kind));
    hash_mix(h, static_cast<std::uint64_t>(e.proc) + 1);
    hash_mix(h, static_cast<std::uint64_t>(e.src) + 1);
    hash_mix(h, static_cast<std::uint64_t>(e.dst) + 1);
    hash_mix(h, static_cast<std::uint64_t>(e.from));
    hash_mix(h, static_cast<std::uint64_t>(e.to));
    hash_mix(h, double_bits(e.prob));
    hash_mix(h, double_bits(e.extra_ms));
    hash_mix(h, e.groups.size());
    for (const auto& g : e.groups) {
      hash_mix(h, g.size());
      for (ProcessId p : g) hash_mix(h, static_cast<std::uint64_t>(p) + 1);
    }
  }
  return h;
}

int min_processes(const FaultPlan& plan) noexcept {
  ProcessId max_pid = 1;  // n >= 2 always
  for (const FaultEvent& e : plan.events) {
    max_pid = std::max({max_pid, e.proc, e.src, e.dst});
    for (const auto& g : e.groups) {
      for (ProcessId p : g) max_pid = std::max(max_pid, p);
    }
  }
  return max_pid + 1;
}

}  // namespace timing::fault

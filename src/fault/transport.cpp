#include "fault/transport.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "net/frame.hpp"

namespace timing::fault {

namespace {

constexpr auto kCrashU8 = static_cast<std::uint8_t>(FaultKind::kCrash);
constexpr auto kPartU8 = static_cast<std::uint8_t>(FaultKind::kPartition);
constexpr auto kDropU8 = static_cast<std::uint8_t>(FaultKind::kDrop);
constexpr auto kDelayU8 = static_cast<std::uint8_t>(FaultKind::kDelay);
constexpr auto kSuppU8 =
    static_cast<std::uint8_t>(FaultKind::kSuppressLeader);

/// Round stamped in an envelope frame; nullopt for probe/garbage frames
/// (which injection leaves alone).
std::optional<std::pair<Round, ProcessId>> envelope_round(const Bytes& bytes) {
  const auto frame = parse_frame(bytes);
  if (!frame || !std::holds_alternative<Envelope>(*frame)) {
    return std::nullopt;
  }
  const Envelope& e = std::get<Envelope>(*frame);
  return std::make_pair(e.round, e.sender);
}

}  // namespace

bool FaultInjectedTransport::send(ProcessId dst, const Bytes& bytes) {
  const auto env = envelope_round(bytes);
  if (!env) return inner_.send(dst, bytes);
  const Round k = env->first;
  const ProcessId self = inner_.self();

  // Drop checks in a fixed order so the emitted reason is deterministic.
  if (injector_.crashed_in(self, k)) {
    trace_emit(trace_sink_, TraceEvent::fault(k, kCrashU8, self));
    return true;  // the network ate it
  }
  if (injector_.crashed_in(dst, k)) {
    trace_emit(trace_sink_, TraceEvent::fault(k, kCrashU8, dst));
    return true;
  }
  if (injector_.partitioned(self, dst, k)) {
    trace_emit(trace_sink_,
               TraceEvent::fault(k, kPartU8, kNoProcess, self, dst));
    return true;
  }
  if (injector_.suppressed(self, k)) {
    trace_emit(trace_sink_, TraceEvent::fault(k, kSuppU8, self));
    return true;
  }
  if (injector_.drop_fires(k, self, dst)) {
    trace_emit(trace_sink_,
               TraceEvent::fault(k, kDropU8, kNoProcess, self, dst));
    return true;
  }
  return inner_.send(dst, bytes);
}

bool FaultInjectedTransport::pop_due(Clock::time_point now, Bytes& out,
                                     ProcessId& from) {
  auto it = held_.end();
  for (auto i = held_.begin(); i != held_.end(); ++i) {
    if (i->due > now) continue;
    if (it == held_.end() || i->due < it->due) it = i;
  }
  if (it == held_.end()) return false;
  out = std::move(it->bytes);
  from = it->from;
  held_.erase(it);
  return true;
}

bool FaultInjectedTransport::recv(Bytes& out, ProcessId& from,
                                  Clock::time_point deadline) {
  const ProcessId self = inner_.self();
  for (;;) {
    const auto now = Clock::now();
    if (pop_due(now, out, from)) return true;

    // Wake up early if a held packet comes due before the deadline.
    Clock::time_point sub = deadline;
    for (const HeldPacket& h : held_) sub = std::min(sub, h.due);

    Bytes raw;
    ProcessId src = kNoProcess;
    if (!inner_.recv(raw, src, sub)) {
      if (Clock::now() >= deadline) return false;
      continue;  // only the held-packet sub-deadline expired
    }

    const auto env = envelope_round(raw);
    if (!env) {
      out = std::move(raw);
      from = src;
      return true;
    }
    const Round k = env->first;
    // Recipient-side crash isolation: covers senders that are not
    // themselves decorated.
    if (injector_.crashed_in(self, k)) {
      trace_emit(trace_sink_, TraceEvent::fault(k, kCrashU8, self));
      continue;
    }
    const double extra_ms = injector_.extra_delay_ms(k, src, self);
    if (extra_ms > 0.0) {
      trace_emit(trace_sink_,
                 TraceEvent::fault(
                     k, kDelayU8, kNoProcess, src, self,
                     std::max(1, static_cast<int>(std::ceil(extra_ms)))));
      held_.push_back(HeldPacket{
          now + std::chrono::microseconds(
                    static_cast<long long>(extra_ms * 1000.0)),
          src, std::move(raw)});
      continue;
    }
    out = std::move(raw);
    from = src;
    return true;
  }
}

}  // namespace timing::fault

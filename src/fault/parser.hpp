// Text grammar for fault plans. One statement per line (or ';' separated
// when inline); '#' comments out the rest of its line (including any
// ';' after it); blank lines ignored:
//
//   crash <p> @<r>
//   recover <p> @<r>
//   partition <g0>|<g1>[|...] @<from>..<to>    groups are comma-separated
//   drop <src|*>-><dst|*> @<from>..<to> [p=<prob>]
//   delay <src|*>-><dst|*> +<ms>ms @<from>..<to>
//   suppress_leader @<from>..<to>
//   gsr @<r>
//
// Windows are half-open rounds [from, to); '*' endpoints mean "every
// process". Numbers go through common/parse checked parsers, so trailing
// garbage is a parse error with the offending line number, never a
// silent truncation.
#pragma once

#include <string>

#include "fault/plan.hpp"

namespace timing::fault {

struct ParseResult {
  FaultPlan plan;
  /// "" on success; otherwise "line N: ..." (file/newline input) or
  /// "statement N: ..." (inline ';' input).
  std::string error;

  bool ok() const noexcept { return error.empty(); }
};

/// Parse plan text. Statements are separated by newlines and/or ';'.
/// Does NOT run validate(); callers bind n/leader first.
ParseResult parse_fault_plan(const std::string& text);

/// Resolve a scenario `fault=` value: if `value` names a readable file,
/// parse its contents (errors cite "<value>: line N"); otherwise treat
/// it as an inline spec. plan.source keeps the raw text either way.
ParseResult load_fault_plan(const std::string& value);

}  // namespace timing::fault

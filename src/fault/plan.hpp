// Declarative fault plans: the adversary as data.
//
// The paper's algorithms are indulgent — agreement and validity must hold
// under arbitrary asynchrony, crashes and message loss, with liveness
// owed only once the run's timing model holds (Sections 2-3). A FaultPlan
// is an ordered list of FaultEvents that make that adversary explicit and
// replayable:
//
//   crash(p, r)                p stops being heard from round r on
//   recover(p, r)              ... until round r (exclusive)
//   partition(groups, [a, b))  cross-group messages lost in rounds [a, b)
//   drop(src, dst, [a, b), q)  messages on the link lost with prob q
//   delay(src, dst, ms, [a,b)) messages on the link late by extra ms
//   suppress_leader([a, b))    the leader's outgoing messages lost
//   gsr(r)                     terminal marker: from round r on the plan
//                              is inert and the network must conform to
//                              the scenario's timing model
//
// One plan drives both injection backends (fault/injector.hpp edits the
// sampled per-round LinkMatrix/PackedLinkMatrix; fault/transport.hpp
// drops/delays live datagrams by the round stamped in the frame), so a
// violation found in simulation replays verbatim over real transports.
//
// The text grammar lives in fault/parser.hpp; validate() enforces the
// structural rules (crash/recover pairing, windows, nothing active past
// the gsr marker) with event-accurate error messages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace timing::fault {

enum class FaultKind : std::uint8_t {
  kCrash = 1,
  kRecover,
  kPartition,
  kDrop,
  kDelay,
  kSuppressLeader,
  kGsr,
};

/// Stable lowercase keyword, identical to the grammar's statement names.
const char* to_string(FaultKind k) noexcept;

struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  /// Subject process (crash/recover).
  ProcessId proc = kNoProcess;
  /// Link endpoints (drop/delay); kNoProcess means the '*' wildcard.
  ProcessId src = kNoProcess;
  ProcessId dst = kNoProcess;
  /// crash/recover/gsr: the event round. Windowed kinds: first round of
  /// the half-open window [from, to).
  Round from = 0;
  Round to = 0;
  /// drop: per-message loss probability.
  double prob = 1.0;
  /// delay: extra latency added to each message on the link.
  double extra_ms = 0.0;
  /// partition: the groups; messages between different groups are lost.
  /// Processes in no group keep all their links.
  std::vector<std::vector<ProcessId>> groups;

  bool operator==(const FaultEvent&) const = default;

  /// One grammar statement ("drop 0->3 @2..6 p=0.5").
  std::string spec() const;
};

struct FaultPlan {
  std::vector<FaultEvent> events;
  /// Terminal stabilization round; -1 when the plan has no gsr marker
  /// (pure-safety plans that never promise liveness).
  Round gsr = -1;
  /// The text the plan was parsed from (or formatted to), kept verbatim
  /// so safety violations can report a replayable spec.
  std::string source;

  bool empty() const noexcept { return events.empty(); }

  /// Canonical one-statement-per-line text; parses back to this plan.
  std::string spec() const;
};

/// Structural validation with event-accurate messages; "" when valid.
/// Enforced rules:
///  * rounds >= 1, windows non-empty, probabilities in [0, 1];
///  * process ids in [0, n); partition groups disjoint; src != dst;
///  * crash/recover alternate per process (no double crash, no recover
///    without a crash, recover strictly after its crash);
///  * the gsr marker, when present, is the last event, every window ends
///    by it (to <= gsr), crashes happen before it, and recoveries land at
///    or before it — nothing the plan injects may outlive stabilization.
/// `leader`, when given, must stay correct: a never-recovered crash of
/// the leader would deny the post-gsr rounds their model conformance.
/// Permanent crashes must also leave a correct majority.
std::string validate(const FaultPlan& plan, int n,
                     ProcessId leader = kNoProcess);

/// Smallest group size the plan's process ids fit in (max id + 1, at
/// least 2); lets callers validate a bare plan file before a scenario
/// binds it to a concrete n.
int min_processes(const FaultPlan& plan) noexcept;

/// True iff the plans inject the same adversary: identical event lists
/// and gsr. `source` is ignored — two plans parsed from differently
/// formatted text (or one parsed, one built) still compare equal.
bool structurally_equal(const FaultPlan& a, const FaultPlan& b) noexcept;

/// Order-sensitive FNV-1a hash over the structural content (events and
/// gsr, not `source`). structurally_equal plans hash identically; the
/// adversary search uses this to dedupe candidates and name archive
/// entries, so the value must be stable across platforms and runs.
std::uint64_t plan_hash(const FaultPlan& plan) noexcept;

/// Human-readable timeline for `timing_lab describe`: one line per
/// event, sorted by activation round (plan order breaks ties), e.g.
///
///   round  2       crash 1 @2
///   rounds 3..6    drop 0->2 @3..7 p=0.5
///   round  9       gsr @9
///
/// Window lines show the inclusive last active round (to - 1).
std::string timeline(const FaultPlan& plan);

}  // namespace timing::fault

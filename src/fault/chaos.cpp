#include "fault/chaos.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "giraf/engine.hpp"
#include "models/schedule.hpp"
#include "obs/trace_analysis.hpp"
#include "oracles/omega.hpp"

namespace timing::fault {

TimingModel native_model(AlgorithmKind k) noexcept {
  switch (k) {
    case AlgorithmKind::kEs3: return TimingModel::kEs;
    case AlgorithmKind::kLm3: return TimingModel::kLm;
    case AlgorithmKind::kAfm5: return TimingModel::kAfm;
    default: return TimingModel::kWlm;
  }
}

int bound_after_gsr(AlgorithmKind k) noexcept {
  switch (k) {
    case AlgorithmKind::kEs3: return 2;
    case AlgorithmKind::kLm3: return 2;
    case AlgorithmKind::kWlm: return 4;
    case AlgorithmKind::kAfm5: return 4;
    case AlgorithmKind::kLmOverWlm: return 7;
    case AlgorithmKind::kPaxos: return 60;  // no constant bound in <>WLM
  }
  return 0;
}

FaultPlan random_fault_plan(int n, ProcessId leader, std::uint64_t seed) {
  TM_CHECK(n >= 3, "chaos plans need n >= 3");
  Rng r(substream_seed(seed, 0x5fa17));
  FaultPlan plan;
  const Round gsr = 6 + static_cast<Round>(r.uniform_int(10));  // [6, 16)

  auto window = [&](Round max_to) {
    const Round from = 1 + static_cast<Round>(r.uniform_int(
                               static_cast<std::uint64_t>(gsr - 1)));
    const Round to =
        from + 1 +
        static_cast<Round>(r.uniform_int(
            static_cast<std::uint64_t>(std::max<Round>(1, max_to - from))));
    return std::pair<Round, Round>{from, std::min(to, max_to)};
  };

  // Permanent crashes: never the leader, never more than the spare
  // minority (a correct majority must survive for post-gsr liveness).
  std::vector<bool> crashed(static_cast<std::size_t>(n), false);
  const int spare = n - majority_size(n);
  const int permanent = static_cast<int>(
      r.uniform_int(static_cast<std::uint64_t>(spare) + 1));
  for (int c = 0; c < permanent; ++c) {
    ProcessId p = static_cast<ProcessId>(r.uniform_int(
        static_cast<std::uint64_t>(n)));
    if (p == leader || crashed[static_cast<std::size_t>(p)]) continue;
    crashed[static_cast<std::size_t>(p)] = true;
    FaultEvent e;
    e.kind = FaultKind::kCrash;
    e.proc = p;
    e.from = 1 + static_cast<Round>(
                     r.uniform_int(static_cast<std::uint64_t>(gsr - 1)));
    plan.events.push_back(e);
  }

  // One recoverable crash (any process not already down, leader
  // included — it is back, hence correct, by gsr).
  if (r.bernoulli(0.5) && gsr >= 3) {
    const ProcessId p = static_cast<ProcessId>(
        r.uniform_int(static_cast<std::uint64_t>(n)));
    if (!crashed[static_cast<std::size_t>(p)]) {
      FaultEvent crash;
      crash.kind = FaultKind::kCrash;
      crash.proc = p;
      crash.from = 1 + static_cast<Round>(r.uniform_int(
                           static_cast<std::uint64_t>(gsr - 2)));
      FaultEvent recover;
      recover.kind = FaultKind::kRecover;
      recover.proc = p;
      recover.from =
          crash.from + 1 +
          static_cast<Round>(r.uniform_int(
              static_cast<std::uint64_t>(gsr - crash.from)));
      plan.events.push_back(crash);
      plan.events.push_back(recover);
    }
  }

  // A two-group partition over a random nonempty proper subset.
  if (r.bernoulli(0.6)) {
    std::vector<ProcessId> a, b;
    for (ProcessId p = 0; p < n; ++p) {
      (r.bernoulli(0.5) ? a : b).push_back(p);
    }
    if (!a.empty() && !b.empty()) {
      FaultEvent e;
      e.kind = FaultKind::kPartition;
      e.groups = {a, b};
      std::tie(e.from, e.to) = window(gsr);
      plan.events.push_back(e);
    }
  }

  // A probabilistic drop rule, sometimes on a wildcard endpoint.
  if (r.bernoulli(0.7)) {
    FaultEvent e;
    e.kind = FaultKind::kDrop;
    e.src = r.bernoulli(0.3)
                ? kNoProcess
                : static_cast<ProcessId>(
                      r.uniform_int(static_cast<std::uint64_t>(n)));
    do {
      e.dst = r.bernoulli(0.3)
                  ? kNoProcess
                  : static_cast<ProcessId>(
                        r.uniform_int(static_cast<std::uint64_t>(n)));
    } while (e.dst != kNoProcess && e.dst == e.src);
    e.prob = 0.25 + 0.75 * r.uniform();
    std::tie(e.from, e.to) = window(gsr);
    plan.events.push_back(e);
  }

  // An extra-latency rule on one directed link.
  if (r.bernoulli(0.5)) {
    FaultEvent e;
    e.kind = FaultKind::kDelay;
    e.src = static_cast<ProcessId>(
        r.uniform_int(static_cast<std::uint64_t>(n)));
    do {
      e.dst = static_cast<ProcessId>(
          r.uniform_int(static_cast<std::uint64_t>(n)));
    } while (e.dst == e.src);
    e.extra_ms = 1.0 + static_cast<double>(r.uniform_int(4));
    std::tie(e.from, e.to) = window(gsr);
    plan.events.push_back(e);
  }

  // Silence the leader for a stretch.
  if (r.bernoulli(0.5)) {
    FaultEvent e;
    e.kind = FaultKind::kSuppressLeader;
    std::tie(e.from, e.to) = window(gsr);
    plan.events.push_back(e);
  }

  FaultEvent end;
  end.kind = FaultKind::kGsr;
  end.from = gsr;
  plan.events.push_back(end);
  plan.gsr = gsr;
  plan.source = plan.spec();

  TM_CHECK(validate(plan, n, leader).empty(),
           "random_fault_plan produced an invalid plan");
  return plan;
}

bool granular_supports(TimingModel model, ProcessId leader,
                       const LinkModelMatrix& m,
                       const std::vector<bool>& alive) {
  const int n = m.n();
  TM_CHECK(n > 0, "granular_supports needs a sized matrix");
  TM_CHECK(alive.empty() || static_cast<int>(alive.size()) == n,
           "alive mask must be empty or have n entries");
  auto is_alive = [&](ProcessId p) {
    return alive.empty() || alive[static_cast<std::size_t>(p)];
  };
  const int maj = majority_size(n);
  auto row_count = [&](ProcessId d) {
    int c = 0;
    for (ProcessId s = 0; s < n; ++s) {
      if (is_alive(s) && m.reliable(d, s)) ++c;
    }
    return c;
  };
  auto col_count = [&](ProcessId s) {
    int c = 0;
    for (ProcessId d = 0; d < n; ++d) {
      if (is_alive(d) && m.reliable(d, s)) ++c;
    }
    return c;
  };

  switch (model) {
    case TimingModel::kEs:
      for (ProcessId d = 0; d < n; ++d) {
        if (!is_alive(d)) continue;
        for (ProcessId s = 0; s < n; ++s) {
          if (is_alive(s) && !m.reliable(d, s)) return false;
        }
      }
      return true;
    case TimingModel::kLm:
      for (ProcessId d = 0; d < n; ++d) {
        if (!is_alive(d)) continue;
        if (!m.reliable(d, leader)) return false;
        if (row_count(d) < maj) return false;
      }
      return true;
    case TimingModel::kWlm:
      for (ProcessId d = 0; d < n; ++d) {
        if (is_alive(d) && !m.reliable(d, leader)) return false;
      }
      return row_count(leader) >= maj;
    case TimingModel::kAfm:
      for (ProcessId p = 0; p < n; ++p) {
        if (!is_alive(p)) continue;
        if (row_count(p) < maj || col_count(p) < maj) return false;
      }
      return true;
  }
  return false;
}

namespace {

std::string violation_report(const char* what, AlgorithmKind kind,
                             const ChaosTrialConfig& cfg,
                             const ChaosRunResult& r,
                             const std::string& detail) {
  std::ostringstream os;
  os << "chaos violation: " << what << " (algorithm="
     << algorithm_key(kind) << " n=" << cfg.n << " leader=" << cfg.leader
     << " seed=" << cfg.seed << " pre_gsr_p=" << cfg.pre_gsr_p
     << " gsr=" << cfg.plan.gsr << " decided_at="
     << r.global_decision_round << " bound=gsr+"
     << bound_after_gsr(kind) << ")";
  if (cfg.link_models.n() > 0 && !cfg.link_models.all_sync()) {
    os << "\nlink models: "
       << cfg.link_models.count(LinkModelClass::kSync) << " sync, "
       << cfg.link_models.count(LinkModelClass::kPartialSync) << " psync, "
       << cfg.link_models.count(LinkModelClass::kAsync) << " async";
  }
  if (!detail.empty()) os << "\n" << detail;
  os << "\nfault plan (replayable):\n"
     << (cfg.plan.source.empty() ? cfg.plan.spec() : cfg.plan.source);
  return os.str();
}

}  // namespace

ChaosRunResult run_chaos_algorithm(AlgorithmKind kind,
                                   const ChaosTrialConfig& cfg) {
  const int n = cfg.n;
  TM_CHECK(cfg.plan.gsr >= 1, "chaos trials need a plan with a gsr marker");
  TM_CHECK(validate(cfg.plan, n, cfg.leader).empty(),
           "chaos trial plan failed validation");

  ChaosRunResult out;
  out.kind = kind;

  std::vector<Value> proposals(static_cast<std::size_t>(n));
  for (ProcessId i = 0; i < n; ++i) proposals[static_cast<std::size_t>(i)] =
      100 + i;

  ScheduleConfig sched;
  sched.n = n;
  sched.model = native_model(kind);
  sched.leader = cfg.leader;
  sched.gsr = cfg.plan.gsr;
  sched.pre_gsr_p = cfg.pre_gsr_p;
  sched.seed = cfg.seed;
  TM_CHECK(cfg.link_models.n() == 0 || cfg.link_models.n() == n,
           "link_models size must match the chaos trial's n");
  sched.link_models = cfg.link_models;

  // Permanent (never-recovered) crashes stop the process itself, not
  // just its links: the engine halts it and the post-gsr schedule repair
  // draws its forced majorities from survivors.
  std::vector<Round> crash_rounds(static_cast<std::size_t>(n), 0);
  {
    std::vector<Round> open(static_cast<std::size_t>(n), 0);
    for (const FaultEvent& e : cfg.plan.events) {
      if (e.kind == FaultKind::kCrash) {
        open[static_cast<std::size_t>(e.proc)] = e.from;
      } else if (e.kind == FaultKind::kRecover) {
        open[static_cast<std::size_t>(e.proc)] = 0;
      }
    }
    crash_rounds = open;
  }

  auto protocols = make_group(kind, proposals);
  auto oracle = std::make_shared<UnstableOracle>(
      n, cfg.leader, cfg.plan.gsr - 1, cfg.seed ^ 0x9e37);
  RoundEngine engine(std::move(protocols), oracle);

  BufferSink sink;
  engine.set_trace_sink(&sink);

  bool any_permanent = false;
  for (ProcessId i = 0; i < n; ++i) {
    const Round r = crash_rounds[static_cast<std::size_t>(i)];
    if (r > 0) {
      engine.crash_at(i, r);
      any_permanent = true;
    }
  }
  if (any_permanent) sched.crash_rounds = crash_rounds;

  ScheduleSampler sampler(sched);
  InjectorConfig icfg;
  icfg.n = n;
  icfg.leader = cfg.leader;
  icfg.seed = cfg.seed;
  icfg.sink = &sink;
  FaultInjector injector(cfg.plan, icfg);
  FaultInjectedSampler chaos_sampler(sampler, injector);

  const Round decided_at = engine.run(chaos_sampler, cfg.max_rounds);
  out.global_decision_round = decided_at;

  // --- Safety: agreement + validity over every decider ---------------
  Value decided = kNoValue;
  std::string detail;
  for (ProcessId i = 0; i < n; ++i) {
    const Protocol& p = engine.process(i);
    if (!p.has_decided()) continue;
    const Value v = p.decision();
    if (decided == kNoValue) {
      decided = v;
    } else if (decided != v) {
      out.safety_ok = false;
      detail = "process " + std::to_string(i) + " decided " +
               std::to_string(v) + " but another process decided " +
               std::to_string(decided);
      out.violation = violation_report("agreement", kind, cfg, out, detail);
      break;
    }
    if (std::find(proposals.begin(), proposals.end(), v) ==
        proposals.end()) {
      out.safety_ok = false;
      detail = "process " + std::to_string(i) + " decided " +
               std::to_string(v) + ", which no process proposed";
      out.violation = violation_report("validity", kind, cfg, out, detail);
      break;
    }
  }

  // --- Integrity + structural trace check -----------------------------
  ParsedTrace trace;
  trace.version = kTraceSchemaVersion;
  trace.n = n;
  trace.trials.push_back(TrialTrace{0, n, sink.events()});
  if (out.safety_ok) {
    const std::string trace_err = validate_trace(trace);
    if (!trace_err.empty()) {
      out.safety_ok = false;
      out.violation = violation_report("integrity (trace invariant)", kind,
                                       cfg, out, trace_err);
    }
  }
  const std::array<int, kTraceNumModels> needed{3, 3, 4, 5};
  out.fault_events = summarize_trial(trace.trials[0], n, needed).fault_events;

  // --- Liveness: decision within the paper bound after gsr ------------
  // Only owed when the post-gsr schedule actually delivers the
  // algorithm's native model: under a granular matrix the repair forces
  // reliable links only, so if the reliable plane (restricted to the
  // processes still alive at the end) cannot carry the model, the bound
  // never applied. Safety above is unconditional either way.
  if (cfg.link_models.n() > 0 && !cfg.link_models.all_sync()) {
    std::vector<bool> alive_mask(static_cast<std::size_t>(n));
    for (ProcessId i = 0; i < n; ++i) {
      alive_mask[static_cast<std::size_t>(i)] =
          crash_rounds[static_cast<std::size_t>(i)] <= 0;
    }
    out.liveness_enforced = granular_supports(native_model(kind), cfg.leader,
                                              cfg.link_models, alive_mask);
  }
  if (out.safety_ok && out.liveness_enforced) {
    const Round bound = cfg.plan.gsr + bound_after_gsr(kind);
    if (decided_at < 0) {
      out.liveness_ok = false;
      out.violation = violation_report(
          "liveness (no decision)", kind, cfg, out,
          "no global decision within max_rounds=" +
              std::to_string(cfg.max_rounds));
    } else if (decided_at > bound) {
      out.liveness_ok = false;
      out.violation =
          violation_report("liveness (bound exceeded)", kind, cfg, out, "");
    }
  }

  if (cfg.trace != nullptr) {
    for (const TraceEvent& e : sink.events()) cfg.trace->record(e);
  }
  return out;
}

}  // namespace timing::fault

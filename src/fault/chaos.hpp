// The chaos safety harness: run the real consensus protocols under
// randomized-but-replayable fault plans and hold them to the paper's
// guarantees — agreement, validity and integrity on EVERY trial (the
// indulgence claim of Sections 2-3: safety under arbitrary asynchrony,
// crashes and loss), and a decision within the algorithm's proven bound
// after the plan's gsr marker (liveness once the model holds).
//
// A violation report quotes the offending plan spec verbatim: paste it
// into `timing_lab run chaos/single fault="<spec>" seed=<seed>` (or a
// plan file) and the trial replays bit for bit.
#pragma once

#include <string>
#include <vector>

#include "consensus/factory.hpp"
#include "fault/plan.hpp"
#include "models/link_model_matrix.hpp"
#include "models/timing_model.hpp"
#include "obs/trace_sink.hpp"

namespace timing::fault {

/// The timing model each algorithm was designed against (drives the
/// post-gsr conforming schedule).
TimingModel native_model(AlgorithmKind k) noexcept;

/// Paper round bound after gsr with a stable leader from gsr-1 (Theorem
/// 10 and the per-algorithm analyses; 60 for Paxos, which has no
/// constant bound under <>WLM).
int bound_after_gsr(AlgorithmKind k) noexcept;

/// A seeded random plan exercising every fault kind: a pre-gsr mix of
/// permanent crashes (never the leader, always leaving a correct
/// majority), a recoverable crash, partitions, probabilistic drops,
/// delays and leader suppression, closed by a gsr marker. Always passes
/// validate(plan, n, leader); plan.source carries the canonical spec.
FaultPlan random_fault_plan(int n, ProcessId leader, std::uint64_t seed);

/// Whether the reliable plane of `m`, restricted to `alive` processes,
/// still delivers everything `model` guarantees in the homogeneous case:
/// post-gsr the schedule repair only forces reliable links, so an
/// algorithm's proven decision bound is only owed when this holds.
/// Thresholds stay majority_size(m.n()) — crashes and async links both
/// eat into the same fixed quorums.
///  * ES:    every alive<->alive link reliable;
///  * LM:    every alive row has a reliable leader entry and >= maj
///           reliable alive sources;
///  * WLM:   every alive row has a reliable leader entry and the leader
///           row has >= maj reliable alive sources;
///  * AFM:   every alive row and every alive column reach maj.
/// `alive.empty()` means everyone is alive.
bool granular_supports(TimingModel model, ProcessId leader,
                       const LinkModelMatrix& m,
                       const std::vector<bool>& alive);

struct ChaosTrialConfig {
  int n = 5;
  ProcessId leader = 0;
  std::uint64_t seed = 1;
  /// Pre-gsr per-link timeliness of the underlying schedule (the faults
  /// are injected on top of this baseline chaos).
  double pre_gsr_p = 0.4;
  int max_rounds = 500;
  FaultPlan plan;  ///< must pass validate(plan, n, leader) with a gsr
  /// Optional per-link timing assignment (empty = homogeneous). The
  /// post-gsr schedule then only conforms on reliable links; safety is
  /// enforced regardless, the liveness bound only when
  /// granular_supports() says the reliable plane can carry the
  /// algorithm's native model. All-sync is bit-identical to homogeneous.
  LinkModelMatrix link_models;
  /// Optional: receives the full engine + injection trace of the run.
  TraceSink* trace = nullptr;
};

struct ChaosRunResult {
  AlgorithmKind kind = AlgorithmKind::kWlm;
  bool safety_ok = true;   ///< agreement + validity + integrity + trace
  bool liveness_ok = true; ///< decided, and by gsr + bound_after_gsr
  /// False when the liveness bound was not owed (the granular matrix's
  /// reliable plane cannot support the algorithm's model); liveness_ok
  /// stays true in that case, it was simply never checked.
  bool liveness_enforced = true;
  Round global_decision_round = -1;
  long long fault_events = 0;
  /// "" when ok; otherwise the full replayable report (config line +
  /// verbatim plan spec).
  std::string violation;

  bool ok() const noexcept { return safety_ok && liveness_ok; }
};

/// One algorithm under one plan. Deterministic in (kind, cfg).
ChaosRunResult run_chaos_algorithm(AlgorithmKind kind,
                                   const ChaosTrialConfig& cfg);

}  // namespace timing::fault

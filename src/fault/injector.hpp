// Sim-path fault injection: apply a FaultPlan as edits on each round's
// sampled link matrix, plus the sampler decorator that slots the
// injection between sampling and the round engine / predicate kernels.
//
// The same FaultInjector also answers the per-message queries the live
// backend (fault/transport.hpp) asks — crashed_in / partitioned /
// suppressed / drop_fires / extra_delay_ms — so the two backends cannot
// drift: a drop decision is a pure function of (plan seed, rule index,
// round, src, dst), never of sampling order or thread count.
#pragma once

#include <vector>

#include "fault/plan.hpp"
#include "obs/trace_sink.hpp"
#include "sim/sampler.hpp"

namespace timing::fault {

struct InjectorConfig {
  int n = 0;
  /// Leader targeted by suppress_leader windows.
  ProcessId leader = kNoProcess;
  /// Salt for the counter-based drop coin flips.
  std::uint64_t seed = 0;
  /// Sim-path ms-per-round used to convert delay amounts into extra
  /// rounds of lateness (max(1, ceil(extra_ms / round_ms))).
  double round_ms = 1.0;
  /// Optional: FaultInjected events for every edit actually made.
  TraceSink* sink = nullptr;
};

class FaultInjector {
 public:
  /// The plan must already pass validate(plan, cfg.n, cfg.leader).
  FaultInjector(const FaultPlan& plan, const InjectorConfig& cfg);

  const FaultPlan& plan() const noexcept { return plan_; }
  Round gsr() const noexcept { return plan_.gsr; }

  /// True when round k can carry any injection (cheap pre-check that
  /// keeps the no-fault rounds on the fused fast path).
  bool active_in(Round k) const noexcept;

  /// Edit round k's sampled matrix in place. Deterministic: the same
  /// (plan, config, k) always makes the same edits, in the same order.
  void apply(Round k, LinkMatrix& a);
  void apply(Round k, PackedLinkMatrix& a);

  // --- Per-message queries (shared with the live backend) -------------
  /// p is crash-isolated in round k (between a crash and its recover;
  /// permanent crashes isolate forever, even past gsr — a process that
  /// never recovers is not correct, which every model permits).
  bool crashed_in(ProcessId p, Round k) const noexcept;
  /// src->dst crosses an active partition in round k.
  bool partitioned(ProcessId src, ProcessId dst, Round k) const noexcept;
  /// src's outgoing messages are suppressed in round k (src is the
  /// leader inside a suppress_leader window).
  bool suppressed(ProcessId src, Round k) const noexcept;
  /// Some drop rule's coin comes up lost for this (round, src, dst).
  bool drop_fires(Round k, ProcessId src, ProcessId dst) const noexcept;
  /// Total extra latency delay rules add to src->dst in round k (ms).
  double extra_delay_ms(Round k, ProcessId src, ProcessId dst) const noexcept;

  /// Round the message sent on src->dst in round k is lost or delayed to,
  /// folding all of the above: kLost, or extra rounds of delay (0 = no
  /// edit). Exactly what apply() writes into the matrix cell.
  Delay link_fate(Round k, ProcessId src, ProcessId dst) const noexcept;

 private:
  void emit_transitions(Round k);
  template <class Matrix>
  void apply_impl(Round k, Matrix& a);

  FaultPlan plan_;
  InjectorConfig cfg_;
  /// Crash-isolation windows [from, to) per process (to = kForever for
  /// permanent crashes), precompiled from the event list.
  struct CrashSpan {
    ProcessId proc;
    Round from;
    Round to;
  };
  std::vector<CrashSpan> crash_spans_;
  /// Rounds [first_active_, last_active_) have at least one live edit or
  /// transition event; permanent crashes stay active past the range.
  Round first_active_ = 0;
  Round last_active_ = 0;
  bool has_permanent_ = false;
  Round perm_from_min_ = 0;
};

/// Sampler decorator: inner sample, then injector.apply. When round k
/// carries no injection the call forwards to the inner sampler's fused
/// kernel untouched, so no-fault runs stay byte-identical to the
/// undecorated pipeline.
class FaultInjectedSampler final : public TimelinessSampler {
 public:
  FaultInjectedSampler(TimelinessSampler& inner, FaultInjector& injector)
      : inner_(inner), injector_(injector) {}

  int n() const noexcept override { return inner_.n(); }
  void sample_round(Round k, LinkMatrix& out) override;
  void sample_round(Round k, PackedLinkMatrix& out) override;
  FusedRoundEval sample_round_and_evaluate(Round k, ProcessId leader,
                                           PackedLinkMatrix& out,
                                           ColumnDeficits& cols) override;

 private:
  TimelinessSampler& inner_;
  FaultInjector& injector_;
};

}  // namespace timing::fault

// Live-path fault injection: a Transport decorator that applies the same
// FaultPlan the sim injector applies, keyed off the GIRAF round stamped
// in each envelope frame. Usable under InProcHub and UdpTransport with
// the roundsync runner; ping/pong probe frames pass through untouched
// (faults are message-adversary behaviour, not clock sabotage).
//
// Rules, per envelope of round k (decided by the shared FaultInjector,
// so the drop coins match the sim backend bit for bit):
//  * sender or recipient crash-isolated in k  -> datagram dropped
//  * src->dst crosses an active partition     -> dropped
//  * sender is the suppressed leader          -> dropped
//  * a drop rule's coin fires                 -> dropped
//  * delay rules                              -> datagram held for the
//    extra milliseconds and delivered late (on the recv side)
// Drops happen on the send side — send() still returns true, the
// "network" ate the datagram — except the recipient-crash check, which
// also runs on the recv side to cover senders that are not themselves
// decorated. Every action emits a FaultInjected trace event.
//
// Span contexts (Envelope::span, obs/span.hpp) ride inside the frames
// this decorator forwards or drops as opaque bytes: delivered envelopes
// keep their message-span id untouched, so causal tracing composes with
// fault injection with no code here knowing about spans.
#pragma once

#include <vector>

#include "fault/injector.hpp"
#include "net/transport.hpp"

namespace timing::fault {

class FaultInjectedTransport final : public Transport {
 public:
  /// Both referents are caller-owned and must outlive the decorator.
  /// recv() must not be called concurrently with itself (one receiver
  /// thread per process, the roundsync discipline).
  FaultInjectedTransport(Transport& inner, const FaultInjector& injector)
      : inner_(inner), injector_(injector) {}

  bool send(ProcessId dst, const Bytes& bytes) override;
  bool recv(Bytes& out, ProcessId& from, Clock::time_point deadline) override;
  ProcessId self() const noexcept override { return inner_.self(); }

 private:
  struct HeldPacket {
    Clock::time_point due;
    ProcessId from;
    Bytes bytes;
  };

  /// Earliest due held packet at or before `now`, if any.
  bool pop_due(Clock::time_point now, Bytes& out, ProcessId& from);

  Transport& inner_;
  const FaultInjector& injector_;
  std::vector<HeldPacket> held_;  ///< recv-thread only
};

}  // namespace timing::fault
